"""A from-scratch XML 1.0 (subset) parser.

Supports elements, attributes (single- or double-quoted), character data,
the five predefined entities plus numeric character references, CDATA
sections, comments, processing instructions and an optional XML
declaration.  DTDs are not supported (a DOCTYPE declaration is skipped).
Errors carry line/column positions.

The parser is a straightforward recursive-descent scanner over the input
string — deliberately dependency-free so the whole system is
self-contained.
"""

from __future__ import annotations

from repro.errors import XMLParseError
from repro.xmldm.document import Document
from repro.xmldm.nodes import Comment, Element, Node, ProcessingInstruction, Text

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character scanner with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, width: int = 1) -> str:
        return self.text[self.pos : self.pos + width]

    def advance(self, width: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + width]
        self.pos += width
        return chunk

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        if self.eof() or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        start = self.pos
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, literal: str, what: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk


def _decode_entities(scanner: _Scanner, raw: str) -> str:
    """Replace entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};") from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise scanner.error(f"bad character reference &{name};") from None
        elif name in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote, "attribute value")
        if "<" in raw:
            raise scanner.error("'<' not allowed in attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(scanner, raw)


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    tag = scanner.read_name()
    attributes = _parse_attributes(scanner)
    element = Element(tag, attributes)
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return element
    scanner.expect(">")
    _parse_content(scanner, element)
    # _parse_content consumed "</"; match the closing tag.
    closing = scanner.read_name()
    if closing != tag:
        raise scanner.error(f"mismatched closing tag </{closing}> for <{tag}>")
    scanner.skip_whitespace()
    scanner.expect(">")
    return element


def _parse_content(scanner: _Scanner, parent: Element) -> None:
    """Parse children of ``parent`` up to (and including) the next '</'."""
    text_start = scanner.pos
    while True:
        if scanner.eof():
            raise scanner.error(f"unexpected end of input inside <{parent.tag}>")
        lt = scanner.text.find("<", scanner.pos)
        if lt < 0:
            raise scanner.error(f"missing closing tag for <{parent.tag}>")
        if lt > scanner.pos:
            raw = scanner.text[scanner.pos : lt]
            scanner.pos = lt
            parent.append(Text(_decode_entities(scanner, raw)))
        if scanner.peek(2) == "</":
            scanner.advance(2)
            return
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            body = scanner.read_until("-->", "comment")
            parent.append(Comment(body))
        elif scanner.peek(9) == "<![CDATA[":
            scanner.advance(9)
            body = scanner.read_until("]]>", "CDATA section")
            parent.append(Text(body))
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            target = scanner.read_name()
            body = scanner.read_until("?>", "processing instruction").strip()
            parent.append(ProcessingInstruction(target, body))
        else:
            parent.append(_parse_element(scanner))
        text_start = scanner.pos


def _parse_prolog(scanner: _Scanner) -> list[Node]:
    """Consume declaration/comments/PIs/DOCTYPE before the root element."""
    prolog: list[Node] = []
    while True:
        scanner.skip_whitespace()
        if scanner.peek(5) == "<?xml":
            scanner.advance(5)
            scanner.read_until("?>", "XML declaration")
        elif scanner.peek(4) == "<!--":
            scanner.advance(4)
            prolog.append(Comment(scanner.read_until("-->", "comment")))
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            target = scanner.read_name()
            body = scanner.read_until("?>", "processing instruction").strip()
            prolog.append(ProcessingInstruction(target, body))
        elif scanner.peek(9) == "<!DOCTYPE":
            scanner.advance(9)
            depth = 1
            while depth > 0:
                ch = scanner.advance()
                if not ch:
                    raise scanner.error("unterminated DOCTYPE")
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
        else:
            return prolog


def parse_document(text: str, name: str = "") -> Document:
    """Parse a complete XML document string into a :class:`Document`."""
    scanner = _Scanner(text)
    prolog = _parse_prolog(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise scanner.error("expected root element")
    root = _parse_element(scanner)
    scanner.skip_whitespace()
    while scanner.peek(4) == "<!--":
        scanner.advance(4)
        scanner.read_until("-->", "comment")
        scanner.skip_whitespace()
    if not scanner.eof():
        raise scanner.error("content after root element")
    document = Document(root, name=name)
    document.prolog = prolog
    return document


def parse_element(text: str) -> Element:
    """Parse a single element (fragment) without document bookkeeping."""
    scanner = _Scanner(text)
    scanner.skip_whitespace()
    element = _parse_element(scanner)
    scanner.skip_whitespace()
    if not scanner.eof():
        raise scanner.error("content after element")
    return element

"""Translate query fragments into SQL for relational sources.

"The compiler translates each fragment into the appropriate query
language for the destination source; for example, if an RDB is being
queried, then the compiler generates SQL" (section 2.1).  A fragment's
accesses become FROM entries, shared variables become join predicates,
pattern literals and pushed conditions become the WHERE clause, and the
pattern's variables become the SELECT list (aliased by variable name so
results bind directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CapabilityError
from repro.query import ast as qast
from repro.sources.base import Fragment


@dataclass
class GeneratedSQL:
    """The compilation result: statement text plus parameter order."""

    text: str
    #: the fragment input variables in ``?`` placeholder order
    param_order: tuple[str, ...]

    def bind(self, params: dict[str, Any]) -> list[Any]:
        missing = [v for v in self.param_order if v not in params]
        if missing:
            raise CapabilityError(f"missing fragment parameters: {missing}")
        return [params[v] for v in self.param_order]


def generate_sql(fragment: Fragment) -> GeneratedSQL:
    """Compile a fragment to one SELECT statement."""
    generator = _Generator(fragment)
    return generator.build()


class _Generator:
    def __init__(self, fragment: Fragment):
        self.fragment = fragment
        #: var -> (alias, column); first binding wins, later ones join
        self.var_columns: dict[str, tuple[str, str]] = {}
        self.joins: list[str] = []
        self.where: list[str] = []
        self.params: list[str] = []

    def build(self) -> GeneratedSQL:
        from_parts: list[str] = []
        for index, access in enumerate(self.fragment.accesses):
            alias = f"t{index}"
            from_parts.append(f"{access.relation} {alias}")
            self._bind_pattern(access.pattern, alias)
        # projection pushdown: SELECT only the requested columns; the
        # full var map stays so joins and conditions may still reference
        # pruned variables (they are evaluated before projection)
        wanted = set(self.fragment.columns)
        select_parts = [
            f"{alias}.{column} AS {var}"
            for var, (alias, column) in self.var_columns.items()
            if not wanted or var in wanted
        ]
        if not select_parts:
            raise CapabilityError("fragment binds no variables")
        for condition in self.fragment.conditions:
            self.where.append(self._expr(condition))
        where_parts = self.joins + self.where
        sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        return GeneratedSQL(sql, tuple(self.params))

    def _bind_pattern(self, pattern, alias: str) -> None:
        """Map a flat access pattern onto columns of one table."""
        for attribute in pattern.attributes:
            if attribute.var is not None:
                self._bind_var(attribute.var, alias, attribute.name)
            elif attribute.literal is not None:
                self.where.append(
                    f"{alias}.{attribute.name} = {_sql_literal(attribute.literal)}"
                )
        for child in pattern.children:
            if child.children or child.attributes:
                raise CapabilityError(
                    "relational fragments accept only flat patterns "
                    f"(nested pattern under <{child.tag}>)"
                )
            if child.text_var is not None:
                self._bind_var(child.text_var, alias, child.tag)
            if child.text_literal is not None:
                self.where.append(
                    f"{alias}.{child.tag} = {_sql_literal(child.text_literal)}"
                )
        if pattern.text_var is not None or pattern.element_var is not None:
            raise CapabilityError(
                "relational fragments cannot bind whole rows to variables"
            )

    def _bind_var(self, var: str, alias: str, column: str) -> None:
        if var in self.var_columns:
            prior_alias, prior_column = self.var_columns[var]
            self.joins.append(f"{prior_alias}.{prior_column} = {alias}.{column}")
        else:
            self.var_columns[var] = (alias, column)

    # -- condition translation ------------------------------------------------

    def _expr(self, expr: qast.Expr) -> str:
        if isinstance(expr, qast.Var):
            if expr.name in self.fragment.input_vars:
                self.params.append(expr.name)
                return "?"
            if expr.name not in self.var_columns:
                raise CapabilityError(
                    f"condition references {expr}, which the fragment "
                    "does not bind"
                )
            alias, column = self.var_columns[expr.name]
            return f"{alias}.{column}"
        if isinstance(expr, qast.Literal):
            return _sql_literal(expr.value)
        if isinstance(expr, qast.BinOp):
            op = {"!=": "<>"}.get(expr.op, expr.op)
            if op not in ("=", "<>", "<", "<=", ">", ">=", "AND", "OR",
                          "LIKE", "+", "-", "*", "/", "%"):
                raise CapabilityError(f"operator {expr.op!r} has no SQL form")
            return f"({self._expr(expr.left)} {op} {self._expr(expr.right)})"
        if isinstance(expr, qast.Not):
            return f"(NOT {self._expr(expr.operand)})"
        if isinstance(expr, qast.Call):
            mapped = {"upper": "UPPER", "lower": "LOWER", "length": "LENGTH",
                      "trim": "TRIM"}.get(expr.name)
            if mapped is None:
                raise CapabilityError(f"function {expr.name!r} has no SQL form")
            args = ", ".join(self._expr(arg) for arg in expr.args)
            return f"{mapped}({args})"
        raise CapabilityError(f"cannot translate {expr!r} to SQL")


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"

"""Customer-360: the paper's flagship scenario, end to end.

"Information about the customers of a company is scattered across
multiple databases in the organization" (section 2): a CRM, a billing
system inherited through an acquisition (different schema, dirty data)
and a support SaaS export.  This example

1. federates the three sources behind mediated relations;
2. runs the *mining* phase of the cleaning flow with a (scripted) human
   reviewer, filling the concordance database;
3. re-runs in *extraction* mode — decisions replay, exceptions trap;
4. publishes golden records and shows data lineage with rollback.

Run:  python examples/customer_360.py
"""

from repro import (
    Catalog,
    NetworkModel,
    NimbleEngine,
    RelationalSource,
    SimClock,
    SourceRegistry,
)
from repro.cleaning import (
    CleaningFlow,
    FieldRule,
    FlowMode,
    LinkStep,
    MatchDecision,
    MatchStep,
    NormalizeStep,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.normalize import NormalizerRegistry
from repro.workloads import make_customer_universe
from repro.xmldm.values import Record


def federate(universe):
    clock = SimClock()
    registry = SourceRegistry(clock)
    for name, db in universe.as_databases().items():
        registry.register(
            RelationalSource(name, db,
                             network=NetworkModel(latency_ms=35, per_row_ms=0.3))
        )
    catalog = Catalog(registry)
    catalog.map_relation("crm_customers", "crm", "customers")
    catalog.map_relation("billing_accounts", "billing", "accounts")
    catalog.map_relation("support_users", "support", "tickets_users")
    return NimbleEngine(catalog)


def unified_datasets(universe):
    """Bring the three shapes onto comparable fields (translation problem)."""
    registry = NormalizerRegistry()
    datasets = {}
    for source, records in universe.records.items():
        unified = []
        for record in records:
            if source == "crm":
                name = f"{record['first_name']} {record['last_name']}"
                city = record["city"]
            elif source == "billing":
                name = record["name"]                      # single full-name field
                city = record["address"].rpartition(",")[2]  # city buried in address
            else:
                name = record["fullname"]
                city = record["city"]
            unified.append(
                Record({
                    "id": record["id"],
                    "name": registry.apply("name", name),
                    "city": registry.apply("city", city),
                })
            )
        datasets[source] = unified
    return datasets


def build_flow():
    matcher = RecordMatcher(
        [
            FieldRule("name", metric=jaro_winkler, weight=2.0),
            FieldRule("city", metric=jaro_winkler, weight=1.0),
        ],
        match_threshold=0.95,
        possible_threshold=0.78,
    )
    return CleaningFlow(
        "customer-360",
        [
            NormalizeStep("name", "whitespace"),
            MatchStep(matcher, blocking="multipass", key_field="name", window=9),
            LinkStep(source_priority=("crm", "billing", "support")),
        ],
    )


def main() -> None:
    universe = make_customer_universe(120, overlap=0.55, dirt=0.15, seed=2001)
    engine = federate(universe)

    print("== federated query across the merged company ==")
    result = engine.query(
        'WHERE <c><first_name>$f</first_name><last_name>$l</last_name>'
        '<tier>$t</tier></c> IN "crm_customers", $t = 1 '
        "CONSTRUCT <gold><f>$f</f><l>$l</l></gold>"
    )
    print(f"  tier-1 customers in CRM: {len(result.elements)} "
          f"(one fragment, {result.stats.rows_transferred} rows transferred)")

    datasets = unified_datasets(universe)
    flow = build_flow()

    # --- phase 1: MINING, with a human in the loop ---------------------------
    truth = universe.identity
    # ids are globally unique across the three sources, so a reviewer can
    # recover a record's provenance from its id alone
    ref_by_id = {
        record["id"]: (source, record["id"])
        for source, records in datasets.items()
        for record in records
    }

    def reviewer(a, b, score):
        """A scripted 'human' who happens to know the ground truth."""
        same = truth[ref_by_id[a["id"]]] == truth[ref_by_id[b["id"]]]
        return MatchDecision.MATCH if same else MatchDecision.NONMATCH

    mined = flow.run(datasets, FlowMode.MINING, reviewer=reviewer)
    print("\n== mining phase ==")
    print(f"  pairs compared: {mined.pairs_compared}")
    print(f"  automatic matches: {mined.auto_decisions}")
    print(f"  ambiguous pairs sent to the reviewer: {mined.human_decisions}")
    print(f"  concordance database now holds {len(flow.concordance)} decisions")

    # --- phase 2: EXTRACTION, decisions replayed -------------------------------
    extracted = flow.run(datasets, FlowMode.EXTRACTION)
    print("\n== extraction phase (replaying the concordance DB) ==")
    print(f"  pairs replayed without re-scoring: {extracted.pairs_replayed}")
    print(f"  new exceptions trapped: {len(extracted.exceptions)}")

    true_pairs = universe.true_match_pairs()
    found = {tuple(sorted(p)) for p in extracted.matched_pairs}
    tp = len(found & true_pairs)
    print(f"  linkage precision: {tp / max(len(found), 1):.3f}, "
          f"recall: {tp / len(true_pairs):.3f}")

    multi = [c for c in extracted.clusters if len(c) > 1]
    print(f"\n== golden records ==")
    print(f"  clusters linking 2+ source records: {len(multi)}")
    sample = next(
        g for g in extracted.golden_records if g.get("__sources", "").count(",") >= 1
    )
    print(f"  sample golden record: {sample}")

    # --- lineage and rollback -----------------------------------------------------
    merge = next(e for e in flow.lineage if e.operation == "merge")
    print("\n== lineage ==")
    print(f"  {merge.output_id}")
    print(f"    derived from: {', '.join(merge.input_ids)}")
    invalidated = flow.lineage.rollback(merge.output_id)
    print(f"  rollback of that merge invalidated: {invalidated}")


if __name__ == "__main__":
    main()

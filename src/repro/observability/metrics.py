"""Counters, gauges, and histograms with deterministic snapshots.

The registry is the long-lived side of observability: where a trace
explains *one* query, metrics aggregate across every query an engine
has run — per-source latency percentiles, retry totals, cache hit
rates.  Snapshots sort every key and compute percentiles by nearest
rank, so two identical runs serialize byte-identically.

:func:`percentile` is the canonical nearest-rank implementation; the
benchmark helpers (``benchmarks/common.py``) delegate to it so the
experiment tables and the live metrics report the same statistic.
"""

from __future__ import annotations

import math
from typing import Any


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile: the smallest value with at least
    ``fraction`` of the data at or below it.

    The rank is ``ceil(fraction * n)`` (1-based); truncating instead is
    off by one whenever ``fraction * n`` lands exactly on a boundary —
    e.g. the p50 of two items would return the max, not the lower one.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (occupancy, fill fraction)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Recorded observations summarized by nearest-rank percentiles.

    Keeps at most ``max_samples`` of the most recent observations (a
    simple sliding window) so long-running engines stay bounded; the
    count and sum cover *every* observation ever made.
    """

    __slots__ = ("max_samples", "samples", "count", "total")

    def __init__(self, max_samples: int = 2048):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples
        self.samples: list[float] = []
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.samples.append(float(value))
        if len(self.samples) > self.max_samples:
            del self.samples[0]

    def snapshot(self) -> dict[str, float]:
        """Deterministic summary of the recorded window."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.samples) if self.samples else 0.0,
            "max": max(self.samples) if self.samples else 0.0,
            "p50": percentile(self.samples, 0.50),
            "p90": percentile(self.samples, 0.90),
            "p99": percentile(self.samples, 0.99),
        }


class MetricsRegistry:
    """Named metrics, created on first touch.

    >>> metrics = MetricsRegistry()
    >>> metrics.counter("queries_total").inc()
    >>> metrics.histogram("source.erp.fetch_virtual_ms").observe(41.5)
    >>> snap = metrics.snapshot()
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(max_samples)
        return metric

    def counter_values(self) -> dict[str, int]:
        """Counter name -> value, keys sorted (aggregation hook)."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def gauge_values(self) -> dict[str, float]:
        """Gauge name -> value, keys sorted (aggregation hook)."""
        return {name: self._gauges[name].value
                for name in sorted(self._gauges)}

    def histograms(self) -> dict[str, Histogram]:
        """Histogram name -> live metric, keys sorted (aggregation hook)."""
        return {name: self._histograms[name]
                for name in sorted(self._histograms)}

    def snapshot(self) -> dict[str, Any]:
        """Every metric, keys sorted, percentiles nearest-rank."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

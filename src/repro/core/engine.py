"""The integration engine: end-to-end XML-QL query service."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.core.partial import Completeness, PartialResultPolicy
from repro.errors import MediationError, SourceUnavailableError
from repro.materialize.manager import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.mediator.schema import ViewDef
from repro.optimizer.costs import CostModel
from repro.optimizer.decomposer import FragmentUnit, decompose
from repro.optimizer.planner import PlanBuilder
from repro.query import ast as qast
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.resilience.executor import ResiliencePolicy, ResilientExecutor
from repro.resilience.fallback import FallbackRegistry
from repro.simtime import SimClock
from repro.sources.base import DataSource, Fragment, NetworkModel
from repro.xmldm.nodes import Element
from repro.xmldm.values import Record


@dataclass
class EngineStats:
    """Per-query execution accounting."""

    elapsed_virtual_ms: float = 0.0
    elapsed_wall_ms: float = 0.0
    fragments_executed: int = 0
    fragments_from_cache: int = 0
    fragments_skipped: int = 0
    rows_transferred: int = 0
    remote_calls: int = 0
    retries: int = 0
    breaker_trips: int = 0
    stale_served: int = 0
    deadline_misses: int = 0
    plan_text: str = ""

    #: integer counters folded into a parent query's stats (sub-queries
    #: for views) — the single place the counter list is spelled out
    _COUNTERS = (
        "fragments_executed", "fragments_from_cache", "fragments_skipped",
        "rows_transferred", "remote_calls", "retries", "breaker_trips",
        "stale_served", "deadline_misses",
    )

    def absorb(self, other: "EngineStats") -> None:
        """Fold a sub-execution's counters into this one."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def counters(self) -> dict[str, int]:
        """The integer counters as a dict (determinism checks, reports)."""
        return {name: getattr(self, name) for name in self._COUNTERS}


@dataclass
class QueryResult:
    """What a query returns: elements, completeness, accounting."""

    elements: list[Element]
    completeness: Completeness
    stats: EngineStats

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def first(self) -> Element | None:
        return self.elements[0] if self.elements else None


class _ExecutionContext:
    """One query execution: policy, completeness, view memo, accounting."""

    def __init__(self, engine: "NimbleEngine", policy: PartialResultPolicy,
                 required_sources: frozenset[str],
                 deadline_at: float | None = None):
        self.engine = engine
        self.policy = policy
        self.required_sources = required_sources
        self.completeness = Completeness()
        self.stats = EngineStats()
        self._view_memo: dict[str, list[Element]] = {}
        resilience = engine.resilience
        if deadline_at is not None:
            self.deadline_at = deadline_at
        elif resilience is not None and resilience.query_deadline_ms is not None:
            self.deadline_at = engine.clock.now + resilience.query_deadline_ms
        else:
            self.deadline_at = None

    # -- the resilient call path ---------------------------------------------

    def call_source(self, source: DataSource, attempt_fn) -> Any:
        """One logical source call under the engine's resilience policy."""
        if self.engine.resilient is None:
            return attempt_fn()
        return self.engine.resilient.call(
            source.name, attempt_fn, self.stats, self.deadline_at
        )

    def charge_network(self, network: NetworkModel,
                       calls_before: int, rows_before: int) -> None:
        """Derive remote-call accounting from the network model's counters.

        This is the one place ``remote_calls``/``rows_transferred`` are
        computed, as deltas of the source's :class:`NetworkModel` — so
        retried attempts and partially transferred (dropped) streams are
        each counted exactly once, never re-derived at the call sites.
        """
        self.stats.remote_calls += network.calls - calls_before
        self.stats.rows_transferred += network.rows_transferred - rows_before

    def give_up(self, fragment: Fragment | None, source_name: str,
                error: SourceUnavailableError,
                params: dict[str, Any] | None = None) -> list:
        """Terminal failure: degraded read if possible, else skip/raise."""
        if self.policy is not PartialResultPolicy.FAIL and params is None:
            fallback = self._degraded_read(fragment)
            if fallback is not None:
                self.stats.stale_served += 1
                self.completeness.record_stale(source_name)
                return fallback
        if self.policy is PartialResultPolicy.FAIL:
            raise error
        if (
            self.policy is PartialResultPolicy.REQUIRE
            and source_name in self.required_sources
        ):
            raise error
        self.completeness.record_skip(source_name)
        self.stats.fragments_skipped += 1
        return []

    def _degraded_read(self, fragment: Fragment | None) -> list[Record] | None:
        """Stale materialized fragment, then registered replica, or None."""
        engine = self.engine
        if fragment is None:
            return None
        if engine.resilience is not None and not engine.resilience.allow_stale:
            return None
        if engine.materializer is not None:
            served = engine.materializer.serve(fragment, allow_stale=True)
            if served is not None:
                return served
        if engine.fallbacks is not None:
            return engine.fallbacks.resolve(fragment)
        return None

    # -- the two calls FragmentScan / view scans make ------------------------

    def fetch_fragment(
        self, unit: FragmentUnit, params: dict[str, Any] | None = None
    ) -> list[Record]:
        engine = self.engine
        fragment = unit.fragment
        source = unit.source
        if params is None and engine.materializer is not None:
            served = engine.materializer.serve(fragment)
            if served is not None:
                self.stats.fragments_from_cache += 1
                return served
        network = source.network
        calls_before, rows_before = network.calls, network.rows_transferred
        started = engine.clock.now
        try:
            records = self.call_source(
                source, lambda: source.execute(fragment, params)
            )
        except SourceUnavailableError as error:
            self.charge_network(network, calls_before, rows_before)
            return self.give_up(fragment, source.name, error, params)
        self.charge_network(network, calls_before, rows_before)
        cost = engine.clock.now - started
        self.stats.fragments_executed += 1
        if engine.materializer is not None and params is None:
            engine.materializer.record_remote(fragment, source, cost, len(records))
        return records

    def fetch_view(self, view: ViewDef) -> list[Element]:
        if view.name in self._view_memo:
            return self._view_memo[view.name]
        if self.engine.materializer is not None:
            served = self.engine.materializer.serve_view(view.name)
            if served is not None:
                self.stats.fragments_from_cache += 1
                self._view_memo[view.name] = served
                return served
        result = self.engine._execute(view.query, self.policy,
                                      self.required_sources, parent=self)
        self._view_memo[view.name] = result.elements
        return result.elements


class NimbleEngine:
    """The query service over a catalog of sources and mediated schemas.

    >>> engine = NimbleEngine(catalog)                      # doctest: +SKIP
    >>> result = engine.query('WHERE ... CONSTRUCT ...')    # doctest: +SKIP
    >>> result.completeness.complete                        # doctest: +SKIP

    ``default_policy`` answers the paper's open question about defaults:
    SKIP with annotation, overridable per query.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        materializer: MaterializationManager | None = None,
        default_policy: PartialResultPolicy = PartialResultPolicy.SKIP,
        pushdown: bool = True,
        name: str = "engine",
        resilience: ResiliencePolicy | None = None,
        fallbacks: FallbackRegistry | None = None,
    ):
        self.catalog = catalog
        self.clock: SimClock = catalog.registry.clock
        self.cost_model = cost_model or CostModel()
        self.materializer = materializer
        self.default_policy = default_policy
        self.pushdown = pushdown
        self.name = name
        self.resilience = resilience
        self.resilient = (
            ResilientExecutor(self.clock, resilience)
            if resilience is not None else None
        )
        self.fallbacks = fallbacks
        self.builder = PlanBuilder(self.cost_model)
        self.queries_run = 0

    # -- public API ------------------------------------------------------------

    def query(
        self,
        text: str | qast.Query,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
    ) -> QueryResult:
        """Run one XML-QL query and return annotated results."""
        query = parse_query(text) if isinstance(text, str) else text
        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        return self._execute(query, effective,
                             frozenset(required_sources or ()))

    def flwor_query(
        self,
        text: str,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
    ) -> QueryResult:
        """Run a FLWOR (XQuery-style) query over the same catalog.

        The paper planned to "adopt the standard query language
        recommended by the W3C Query Working Group"; because only a
        physical algebra was built, swapping the language is a front-end
        change.  FLWOR sources are fetched wholesale (no pushdown) —
        the unoptimized access path — with the same partial-results
        policies, including REQUIRE over ``required_sources``.
        """
        from repro.mediator.mapping import RelationMapping
        from repro.mediator.schema import ViewDef
        from repro.query.flwor import translate_flwor

        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        self.queries_run += 1
        context = _ExecutionContext(self, effective,
                                    frozenset(required_sources or ()))

        def resolver(name: str):
            resolved = self.catalog.resolve(name)
            if isinstance(resolved, ViewDef):
                return context.fetch_view(resolved)
            if isinstance(resolved, RelationMapping):
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.source_relation
            else:
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.relation
            network = source.network
            calls_before = network.calls
            rows_before = network.rows_transferred
            try:
                items = context.call_source(
                    source, lambda: source.fetch_all(relation)
                )
            except SourceUnavailableError as error:
                context.charge_network(network, calls_before, rows_before)
                # wholesale fetches are not fragment-keyed, so there is
                # no stale fallback here — skip or raise per policy
                return context.give_up(None, source.name, error)
            context.charge_network(network, calls_before, rows_before)
            context.stats.fragments_executed += 1
            return items

        plan = translate_flwor(text, resolver)
        started_virtual = self.clock.now
        started_wall = time.perf_counter()
        elements = plan.results()
        context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
        context.stats.elapsed_wall_ms = (time.perf_counter() - started_wall) * 1000
        context.stats.plan_text = plan.explain()
        return QueryResult(elements, context.completeness, context.stats)

    def explain(self, text: str | qast.Query) -> str:
        """The physical plan the engine would run, as indented text."""
        query = parse_query(text) if isinstance(text, str) else text
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        context = _ExecutionContext(self, self.default_policy, frozenset())
        plan = self.builder.build(decomposed, context)
        return plan.explain()

    def materialize_query_fragments(self, text: str | qast.Query,
                                    policy=None) -> int:
        """Materialize every remote fragment a query would execute.

        The management-tools path: "enable specification of which data
        sources (or queries over data sources) should be materialized in
        a local store".  Returns the number of fragments materialized.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        query = parse_query(text) if isinstance(text, str) else text
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        count = 0
        for unit in decomposed.units:
            if not isinstance(unit, FragmentUnit) or unit.dependent:
                continue
            if self.materializer.store.get(
                _fragment_store_key(unit.fragment)
            ) is not None:
                continue
            self.materializer.materialize(
                unit.fragment, lambda f, u=unit: u.source.execute(f), policy
            )
            count += 1
        return count

    def materialize_view(self, name: str, policy=None):
        """Materialize a mediated view's result elements in the local store.

        This is the paper's headline materialization unit: "one does not
        design a warehouse schema.  Instead, one materializes views over
        the mediated schema."  The view stays fresh per its policy; the
        engine transparently serves it on later queries.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        resolved = self.catalog.resolve(name)
        if not isinstance(resolved, ViewDef):
            raise MediationError(f"{name!r} is not a mediated view")

        def fetch() -> list[Element]:
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.materialize_view(name, fetch, policy)

    def refresh_materialized_views(self) -> int:
        """Re-execute every stale materialized mediated view."""
        if self.materializer is None:
            return 0

        def fetch(name: str) -> list[Element]:
            resolved = self.catalog.resolve(name)
            assert isinstance(resolved, ViewDef)
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.refresh_stale_views(fetch)

    # -- internals ----------------------------------------------------------------

    def _execute(
        self,
        query: qast.Query,
        policy: PartialResultPolicy,
        required_sources: frozenset[str],
        parent: _ExecutionContext | None = None,
    ) -> QueryResult:
        self.queries_run += 1
        context = _ExecutionContext(
            self, policy, required_sources,
            deadline_at=parent.deadline_at if parent is not None else None,
        )
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        plan = self.builder.build(decomposed, context)
        started_virtual = self.clock.now
        started_wall = time.perf_counter()
        elements = plan.results()
        context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
        context.stats.elapsed_wall_ms = (time.perf_counter() - started_wall) * 1000
        context.stats.plan_text = plan.explain()
        if parent is not None:
            parent.completeness.merge(context.completeness)
            parent.stats.absorb(context.stats)
        return QueryResult(elements, context.completeness, context.stats)


def _fragment_store_key(fragment: Fragment) -> str:
    from repro.materialize.matching import fragment_key

    return fragment_key(fragment)

"""Subtree-hash differ: synthesizing deltas from snapshot-only sources.

Some sources cannot emit change records — they only hand over a new
snapshot of a document.  The differ turns two document versions into
insert/update/delete records by the xml2db idiom: hash every node over
its subtree (memoized on the node, see
:meth:`repro.xmldm.nodes.Node.subtree_hash`) and recurse only into
children whose hashes changed.  Equal root hashes short-circuit the
whole comparison to one string equality.

The unit of change is a **row element**: a direct element child of the
document root, keyed by the relation's declared key field (an attribute
or a flat child element's text).  Shapes deltas cannot describe map to
a single ``reset``:

* a row without a key value, or two rows sharing one;
* surviving rows whose relative order changed (scans emit document
  order, and delta consumers preserve positions, not reorderings);
* inserts anywhere but after every surviving row (consumers append).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xmldm.nodes import Element


@dataclass(frozen=True)
class NodeChange:
    """One row-level difference between two document versions."""

    op: str  # insert | update | delete | reset
    key: object = None
    node: Element | None = None         # after-image subtree
    before_node: Element | None = None  # before-image subtree


def row_key(element: Element, key_field: str) -> object | None:
    """A row element's key: attribute first, else flat child text."""
    value = element.attributes.get(key_field)
    if value is not None:
        return value
    child = element.first_child(key_field)
    if child is not None:
        return child.text_content()
    return None


def diff_documents(
    old_root: Element, new_root: Element, key_field: str
) -> list[NodeChange]:
    """Row-level changes turning ``old_root`` into ``new_root``.

    Returns ``[]`` when the trees are identical, ``[NodeChange('reset')]``
    when the difference has no delta shape, and otherwise deletes (old
    document order), then updates, then inserts (both new document
    order) — the order consumers apply them in.
    """
    if old_root.subtree_hash() == new_root.subtree_hash():
        return []
    if old_root.tag != new_root.tag:
        return [NodeChange("reset")]

    old_rows = list(old_root.child_elements())
    new_rows = list(new_root.child_elements())
    old_keys = [row_key(row, key_field) for row in old_rows]
    new_keys = [row_key(row, key_field) for row in new_rows]
    if (
        None in old_keys
        or None in new_keys
        or len(set(old_keys)) != len(old_keys)
        or len(set(new_keys)) != len(new_keys)
    ):
        return [NodeChange("reset")]

    old_by_key = dict(zip(old_keys, old_rows))
    new_key_set = set(new_keys)
    surviving_old = [key for key in old_keys if key in new_key_set]
    surviving_new = [key for key in new_keys if key in old_by_key]
    if surviving_old != surviving_new:
        return [NodeChange("reset")]  # surviving rows were reordered
    last_surviving = (
        max(
            index
            for index, key in enumerate(new_keys)
            if key in old_by_key
        )
        if surviving_new
        else -1
    )
    if any(
        index < last_surviving
        for index, key in enumerate(new_keys)
        if key not in old_by_key
    ):
        return [NodeChange("reset")]  # insert before a surviving row

    changes: list[NodeChange] = []
    for key, row in zip(old_keys, old_rows):
        if key not in new_key_set:
            changes.append(NodeChange("delete", key, before_node=row))
    for key, row in zip(new_keys, new_rows):
        before = old_by_key.get(key)
        if before is None:
            changes.append(NodeChange("insert", key, node=row))
        elif before.subtree_hash() != row.subtree_hash():
            # the only recursion the differ needs: hashes gate which
            # row subtrees are even looked at
            changes.append(NodeChange("update", key, node=row,
                                      before_node=before))
    return changes


__all__ = ["NodeChange", "diff_documents", "row_key"]

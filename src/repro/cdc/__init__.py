"""Change data capture: feeds, diffing, delta algebra, change scoping.

The subsystem that turns the warehouse tier from "fast but stale" into
"fast and fresh" (paper §3.3's compound architecture under writes):

* :mod:`changelog` — per-source append-only change feeds with
  monotonically increasing sequence numbers;
* :mod:`differ` — subtree-hash document diffing for snapshot-only
  sources (hash every node, recurse only into changed hashes);
* :mod:`delta` — delta counterparts of the algebra operators, including
  grouped aggregation with retraction;
* :mod:`scope` — mapping one change to the fragments it can affect:
  key-range exclusion, in-place record patches.

Consumers: :class:`repro.materialize.incremental.IncrementalMaterializer`
drains feeds into materialized views; the engine's ``sync_changes``
drives scoped cache/store invalidation.
"""

from repro.cdc.changelog import CHANGE_OPS, ChangeLog, ChangeRecord
from repro.cdc.delta import (
    DeltaCompute,
    DeltaDistinct,
    DeltaGroups,
    DeltaJoin,
    DeltaProject,
    DeltaSelect,
    DeltaUnsupported,
    RowDelta,
    select_deltas,
)
from repro.cdc.differ import NodeChange, diff_documents, row_key
from repro.cdc.scope import (
    FragmentPatch,
    change_key_var,
    fragment_patch,
    key_affected,
    pattern_bindings,
    patch_records,
)

__all__ = [
    "CHANGE_OPS",
    "ChangeLog",
    "ChangeRecord",
    "DeltaCompute",
    "DeltaDistinct",
    "DeltaGroups",
    "DeltaJoin",
    "DeltaProject",
    "DeltaSelect",
    "DeltaUnsupported",
    "FragmentPatch",
    "NodeChange",
    "RowDelta",
    "change_key_var",
    "diff_documents",
    "fragment_patch",
    "key_affected",
    "pattern_bindings",
    "patch_records",
    "row_key",
    "select_deltas",
]

"""SQL value types, coercion and three-valued comparison semantics.

NULL is represented by Python ``None`` inside the SQL engine (the model
layer converts to/from :data:`repro.xmldm.values.NULL` at the wrapper
boundary).  Comparisons involving NULL return ``None`` — UNKNOWN — which
WHERE treats as false, per standard SQL.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import SQLTypeError


class SQLType(enum.Enum):
    """Column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "DATE": cls.DATE,
        }
        if normalized not in aliases:
            raise SQLTypeError(f"unknown SQL type {name!r}")
        return aliases[normalized]


def coerce(value: Any, sql_type: SQLType) -> Any:
    """Coerce ``value`` to ``sql_type``; NULL passes through.

    Raises :class:`SQLTypeError` when the value cannot represent the type
    (e.g. TEXT into INTEGER).
    """
    if value is None:
        return None
    try:
        if sql_type is SQLType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                return int(value)
        elif sql_type is SQLType.REAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value)
        elif sql_type is SQLType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (int, float)):
                return str(value)
            if isinstance(value, datetime.date):
                return value.isoformat()
        elif sql_type is SQLType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.lower() in ("true", "false"):
                return value.lower() == "true"
        elif sql_type is SQLType.DATE:
            if isinstance(value, datetime.datetime):
                return value.date()
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return datetime.date.fromisoformat(value)
    except (ValueError, TypeError) as exc:
        raise SQLTypeError(f"cannot coerce {value!r} to {sql_type.value}") from exc
    raise SQLTypeError(f"cannot coerce {value!r} to {sql_type.value}")


def sql_compare(a: Any, b: Any) -> int | None:
    """Three-valued comparison: -1/0/1, or None when either side is NULL.

    Numbers compare numerically (booleans count as 0/1); strings and
    dates compare naturally; comparing incompatible types raises.
    """
    if a is None or b is None:
        return None
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return (a > b) - (a < b)
    if isinstance(a, str) and isinstance(b, str):
        return (a > b) - (a < b)
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return (a > b) - (a < b)
    # Cross-type comparison via text, so 'DATE' columns compare to strings.
    if isinstance(a, datetime.date) and isinstance(b, str):
        return sql_compare(a.isoformat(), b)
    if isinstance(a, str) and isinstance(b, datetime.date):
        return sql_compare(a, b.isoformat())
    raise SQLTypeError(f"cannot compare {a!r} with {b!r}")


def sql_equal(a: Any, b: Any) -> bool | None:
    """Three-valued equality."""
    result = sql_compare(a, b)
    if result is None:
        return None
    return result == 0


def is_truthy(value: Any) -> bool:
    """WHERE-clause truth: UNKNOWN (None) and false are both rejected."""
    return value is True


def sort_key(value: Any) -> tuple:
    """Total-order key placing NULLs first, then by type family."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, datetime.date):
        return (3, value.isoformat())
    return (4, repr(value))

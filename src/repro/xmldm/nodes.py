"""Ordered element trees with document order and full navigation.

Nodes keep parent pointers and per-document pre-order numbers so the
algebra can implement the navigation features the paper's conclusion
requires: document order, and "navigating the XML document structure up,
down and sideways" (section 4).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any, Iterable, Iterator


def _digest(*parts: str) -> str:
    """16-byte blake2b digest over NUL-separated parts (hex)."""
    h = blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class Node:
    """Base class for all tree nodes.

    ``document_order`` is the node's pre-order position in its document;
    it is assigned by :meth:`repro.xmldm.document.Document.renumber` and
    is ``-1`` for nodes not (yet) attached to a document.

    Every node memoizes a deterministic **subtree hash** (hashlib-based,
    stable across processes — unlike built-in ``hash``, which is
    per-process randomized for strings).  The CDC differ compares two
    document versions by root hash and recurses only into children whose
    hashes changed; future dedup work shares the same cached hash.  The
    cache is invalidated up the parent chain by the mutator methods
    (``append``/``insert``/``remove``/``set_attribute``/
    ``remove_attribute``/``set_value``); mutating ``attributes`` or
    ``children`` directly bypasses the cache and is unsupported once a
    hash has been taken.
    """

    __slots__ = ("parent", "document_order", "_subtree_hash")

    def __init__(self) -> None:
        self.parent: Element | None = None
        self.document_order: int = -1
        self._subtree_hash: str | None = None

    def subtree_hash(self) -> str:
        """Deterministic digest of this node's entire subtree."""
        raise NotImplementedError

    def _invalidate_subtree_hash(self) -> None:
        """Drop cached hashes from here up to the root.

        Stops at the first node with no cached hash: a parent's hash can
        only have been computed after its children's, so an uncached
        node can never have a cached ancestor.
        """
        node: Node | None = self
        while node is not None and node._subtree_hash is not None:
            node._subtree_hash = None
            node = node.parent

    # -- navigation -------------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield the parent chain from nearest to root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node of this tree."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def following_siblings(self) -> Iterator["Node"]:
        """Yield siblings after this node, in document order."""
        if self.parent is None:
            return
        seen_self = False
        for child in self.parent.children:
            if seen_self:
                yield child
            elif child is self:
                seen_self = True

    def preceding_siblings(self) -> Iterator["Node"]:
        """Yield siblings before this node, nearest first."""
        if self.parent is None:
            return
        before: list[Node] = []
        for child in self.parent.children:
            if child is self:
                break
            before.append(child)
        yield from reversed(before)

    def text_content(self) -> str:
        """Concatenated text of this node and its descendants."""
        raise NotImplementedError


class Text(Node):
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def set_value(self, value: str) -> None:
        """Replace the text, invalidating cached subtree hashes."""
        if value == self.value:
            return
        self.value = value
        self._invalidate_subtree_hash()

    def subtree_hash(self) -> str:
        cached = self._subtree_hash
        if cached is None:
            cached = _digest("text", self.value)
            self._subtree_hash = cached
        return cached

    def text_content(self) -> str:
        return self.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Text):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("text", self.value))

    def __repr__(self) -> str:
        return f"Text({self.value!r})"


class Comment(Node):
    """An XML comment; preserved through parse/serialize but inert."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def subtree_hash(self) -> str:
        cached = self._subtree_hash
        if cached is None:
            cached = _digest("comment", self.value)
            self._subtree_hash = cached
        return cached

    def text_content(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comment):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("comment", self.value))

    def __repr__(self) -> str:
        return f"Comment({self.value!r})"


class ProcessingInstruction(Node):
    """An XML processing instruction; parsed, carried, not interpreted."""

    __slots__ = ("target", "value")

    def __init__(self, target: str, value: str = ""):
        super().__init__()
        self.target = target
        self.value = value

    def subtree_hash(self) -> str:
        cached = self._subtree_hash
        if cached is None:
            cached = _digest("pi", self.target, self.value)
            self._subtree_hash = cached
        return cached

    def text_content(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessingInstruction):
            return NotImplemented
        return (self.target, self.value) == (other.target, other.value)

    def __hash__(self) -> int:
        return hash(("pi", self.target, self.value))

    def __repr__(self) -> str:
        return f"ProcessingInstruction({self.target!r}, {self.value!r})"


class Element(Node):
    """An element with a tag, ordered attributes and ordered children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        children: Iterable[Node | str] | None = None,
    ):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        for child in children or ():
            self.append(child)

    # -- mutation ---------------------------------------------------------

    def append(self, child: "Node | str") -> "Node":
        """Append a child (a bare string becomes a Text node)."""
        node = Text(child) if isinstance(child, str) else child
        node.parent = self
        self.children.append(node)
        self._invalidate_subtree_hash()
        return node

    def insert(self, index: int, child: "Node | str") -> "Node":
        node = Text(child) if isinstance(child, str) else child
        node.parent = self
        self.children.insert(index, node)
        self._invalidate_subtree_hash()
        return node

    def remove(self, child: "Node") -> None:
        self.children.remove(child)
        child.parent = None
        self._invalidate_subtree_hash()

    def set_attribute(self, name: str, value: str) -> None:
        """Set one attribute, invalidating cached subtree hashes."""
        if self.attributes.get(name) == value:
            return
        self.attributes[name] = value
        self._invalidate_subtree_hash()

    def remove_attribute(self, name: str) -> None:
        if name not in self.attributes:
            return
        del self.attributes[name]
        self._invalidate_subtree_hash()

    # -- navigation -------------------------------------------------------

    def child_elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield element children, optionally filtered by tag."""
        for child in self.children:
            if isinstance(child, Element) and (tag is None or child.tag == tag):
                yield child

    def first_child(self, tag: str) -> "Element | None":
        """Return the first element child with ``tag``, or None."""
        for child in self.child_elements(tag):
            return child
        return None

    def descendants(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield descendant elements in document order (self excluded)."""
        for child in self.children:
            if isinstance(child, Element):
                if tag is None or child.tag == tag:
                    yield child
                yield from child.descendants(tag)

    def descendants_or_self(self, tag: str | None = None) -> Iterator["Element"]:
        if tag is None or self.tag == tag:
            yield self
        yield from self.descendants(tag)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of all nodes, self included."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.walk()
            else:
                yield child

    # -- content ----------------------------------------------------------

    def subtree_hash(self) -> str:
        """Memoized digest over tag, sorted attributes and child hashes.

        Children contribute in document order, so reordering changes the
        hash; attributes are order-insensitive (matching ``__eq__``).
        """
        cached = self._subtree_hash
        if cached is not None:
            return cached
        h = blake2b(digest_size=16)
        h.update(b"elem\x00")
        h.update(self.tag.encode("utf-8"))
        for name in sorted(self.attributes):
            h.update(b"\x00a\x00")
            h.update(name.encode("utf-8"))
            h.update(b"\x00")
            h.update(str(self.attributes[name]).encode("utf-8"))
        for child in self.children:
            h.update(b"\x00c\x00")
            h.update(child.subtree_hash().encode("ascii"))
        cached = h.hexdigest()
        self._subtree_hash = cached
        return cached

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    def copy(self) -> "Element":
        """Deep-copy this subtree (detached: no parent, no document order)."""
        clone = Element(self.tag, dict(self.attributes))
        for child in self.children:
            if isinstance(child, Element):
                clone.append(child.copy())
            elif isinstance(child, Text):
                clone.append(Text(child.value))
            elif isinstance(child, Comment):
                clone.append(Comment(child.value))
            elif isinstance(child, ProcessingInstruction):
                clone.append(ProcessingInstruction(child.target, child.value))
        return clone

    # -- equality (structural, ignores parent/document order) -------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.attributes == other.attributes
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.tag,
                tuple(sorted(self.attributes.items())),
                tuple(
                    child if not isinstance(child, Element) else ("elem", child.tag)
                    for child in self.children
                ),
            )
        )

    def __repr__(self) -> str:
        attrs = "".join(f" {k}={v!r}" for k, v in self.attributes.items())
        return f"<Element {self.tag}{attrs} children={len(self.children)}>"

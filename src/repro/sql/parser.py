"""Recursive-descent parser for the SQL subset.

Grammar (informal):

    select   := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                [GROUP BY expr_list [HAVING expr]] [ORDER BY order_list]
                [LIMIT n [OFFSET n]]
    join     := [INNER | LEFT [OUTER] | CROSS] JOIN table_ref [ON expr]
    expr     := or_expr with standard precedence
                (OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < add < mul < unary)
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize


def parse_statement(text: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ';' is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.parse_statement())
        if not parser.accept_punct(";"):
            break
    parser.expect_eof()
    return statements


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone SQL expression (used in tests and the compiler)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self._param_count = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind == "EOF"

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        return SQLSyntaxError(f"{message}, found {token.value!r} at offset {token.position}")

    def accept_keyword(self, *words: str) -> str | None:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in words:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == punct:
            self.advance()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            raise self.error(f"expected {punct!r}")

    def accept_op(self, *ops: str) -> str | None:
        token = self.peek()
        if token.kind == "OP" and token.value in ops:
            self.advance()
            return token.value
        return None

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind == "IDENT":
            self.advance()
            return token.value
        raise self.error("expected an identifier")

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.accept_keyword("SELECT"):
            return self._parse_select()
        if self.accept_keyword("INSERT"):
            return self._parse_insert()
        if self.accept_keyword("UPDATE"):
            return self._parse_update()
        if self.accept_keyword("DELETE"):
            return self._parse_delete()
        if self.accept_keyword("CREATE"):
            return self._parse_create()
        if self.accept_keyword("DROP"):
            self.expect_keyword("TABLE")
            return ast.DropTableStmt(self.expect_ident())
        raise self.error("expected a statement")

    def _parse_select(self) -> ast.SelectStmt:
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self._parse_select_item()]
        while self.accept_punct(","):
            items.append(self._parse_select_item())
        table = None
        joins: list[ast.JoinClause] = []
        if self.accept_keyword("FROM"):
            table = self._parse_table_ref()
            while True:
                join = self._parse_join()
                if join is None:
                    break
                joins.append(join)
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        having = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.accept_punct(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
            if self.accept_keyword("HAVING"):
                having = self.parse_expr()
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            orders = [self._parse_order_item()]
            while self.accept_punct(","):
                orders.append(self._parse_order_item())
            order_by = tuple(orders)
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self._parse_int()
            if self.accept_keyword("OFFSET"):
                offset = self._parse_int()
        return ast.SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.kind == "OP" and token.value == "*":
            self.advance()
            return ast.SelectItem(ast.Literal(None), star=True)
        # t.* form
        if (
            token.kind == "IDENT"
            and self.tokens[self.pos + 1].kind == "PUNCT"
            and self.tokens[self.pos + 1].value == "."
            and self.tokens[self.pos + 2].kind == "OP"
            and self.tokens[self.pos + 2].value == "*"
        ):
            table = self.expect_ident()
            self.advance()  # '.'
            self.advance()  # '*'
            return ast.SelectItem(ast.Literal(None), star=True, star_table=table)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "IDENT":
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias=alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "IDENT":
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def _parse_join(self) -> ast.JoinClause | None:
        kind = None
        if self.accept_keyword("JOIN") or self.accept_keyword("INNER"):
            if self.peek().kind == "KEYWORD" and self.peek().value == "JOIN":
                self.advance()
            kind = "INNER"
        elif self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            kind = "LEFT"
        elif self.accept_keyword("CROSS"):
            self.expect_keyword("JOIN")
            kind = "CROSS"
        elif self.accept_punct(","):
            kind = "CROSS"
        if kind is None:
            return None
        table = self._parse_table_ref()
        condition = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expr()
        return ast.JoinClause(table, kind, condition)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _parse_int(self) -> int:
        token = self.peek()
        if token.kind != "NUMBER":
            raise self.error("expected an integer")
        self.advance()
        try:
            return int(token.value)
        except ValueError:
            raise self.error("expected an integer") from None

    def _parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self.accept_punct(","):
            rows.append(self._parse_value_row())
        return ast.InsertStmt(table, columns, tuple(rows))

    def _parse_value_row(self) -> tuple[ast.Expr, ...]:
        self.expect_punct("(")
        values = [self.parse_expr()]
        while self.accept_punct(","):
            values.append(self.parse_expr())
        self.expect_punct(")")
        return tuple(values)

    def _parse_update(self) -> ast.UpdateStmt:
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.UpdateStmt(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_ident()
        if not self.accept_op("="):
            raise self.error("expected '='")
        return column, self.parse_expr()

    def _parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.DeleteStmt(table, where)

    def _parse_create(self) -> ast.Statement:
        if self.accept_keyword("TABLE"):
            table = self.expect_ident()
            self.expect_punct("(")
            columns = [self._parse_column_def()]
            while self.accept_punct(","):
                columns.append(self._parse_column_def())
            self.expect_punct(")")
            return ast.CreateTableStmt(table, tuple(columns))
        if self.accept_keyword("INDEX"):
            name = self.expect_ident()
            self.expect_keyword("ON")
            table = self.expect_ident()
            self.expect_punct("(")
            column = self.expect_ident()
            self.expect_punct(")")
            return ast.CreateIndexStmt(name, table, column)
        raise self.error("expected TABLE or INDEX after CREATE")

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        token = self.peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise self.error("expected a column type")
        self.advance()
        type_name = token.value
        # Swallow optional (n) / (p, s) length specs.
        if self.accept_punct("("):
            self._parse_int()
            if self.accept_punct(","):
                self._parse_int()
            self.expect_punct(")")
        nullable = True
        primary_key = False
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("UNIQUE"):
                pass  # accepted and ignored (documented subset)
            else:
                break
        return ast.ColumnDef(name, type_name, nullable, primary_key)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        op = self.accept_op("=", "<>", "!=", "<=", ">=", "<", ">")
        if op is not None:
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("LIKE"):
            return ast.Like(left, self._parse_additive(), negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("IS"):
            inner_negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated or inner_negated)
        if negated:
            raise self.error("expected IN, LIKE, BETWEEN or IS after NOT")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op = self.accept_op("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self.accept_op("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self.accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            if any(ch in token.value for ch in ".eE"):
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return ast.Literal(token.value == "TRUE")
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if token.kind == "PUNCT" and token.value == "?":
            self.advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "IDENT":
            name = self.expect_ident()
            if self.accept_punct("("):
                return self._parse_call(name)
            if self.accept_punct("."):
                column = self.expect_ident()
                return ast.ColumnRef(column, table=name)
            return ast.ColumnRef(name)
        raise self.error("expected an expression")

    def _parse_call(self, name: str) -> ast.Expr:
        star = False
        distinct = False
        args: list[ast.Expr] = []
        token = self.peek()
        if token.kind == "OP" and token.value == "*":
            self.advance()
            star = True
        elif not (token.kind == "PUNCT" and token.value == ")"):
            distinct = bool(self.accept_keyword("DISTINCT"))
            args.append(self.parse_expr())
            while self.accept_punct(","):
                args.append(self.parse_expr())
        self.expect_punct(")")
        return ast.FuncCall(name.upper(), tuple(args), distinct=distinct, star=star)

"""End-to-end projection pushdown: decomposer, sources, cache, SQL.

The chain under test: the decomposer prunes each fragment's transferred
columns to the variables the rest of the query consumes; sources fetch
only those columns (visible in the generated SQL and the transfer
counters); the fragment cache and materializer understand that a
narrower column set is servable from a broader cached one — and project
the served records so a cache hit is indistinguishable from a source
fetch.
"""

from dataclasses import replace

import pytest

from repro.core import NimbleEngine
from repro.errors import CapabilityError
from repro.materialize.matching import fragment_key, matches, project_records
from repro.mediator.catalog import Catalog
from repro.optimizer.decomposer import decompose
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.simtime import SimClock
from repro.sources import NetworkModel, SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sql import Database
from repro.xmldm import serialize
from repro.xmldm.values import Record


def build_crm():
    db = Database("crm")
    db.execute(
        "CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, "
        "city TEXT, tier INTEGER)"
    )
    db.insert_rows("customers", [
        (i, f"name-{i}", f"city-{i % 3}", i % 4) for i in range(10)
    ])
    return db


def build_deployment(**engine_kw):
    clock = SimClock()
    registry = SourceRegistry(clock)
    db = build_crm()
    source = RelationalSource(
        "crm", db, network=NetworkModel(latency_ms=10.0, per_row_ms=0.2)
    )
    registry.register(source)
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    return NimbleEngine(catalog, **engine_kw), source, db


WIDE_PATTERN = (
    '<row><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></row>'
)
NARROW_QUERY = (
    f'WHERE {WIDE_PATTERN} IN "customers", $t > 1 '
    'CONSTRUCT <out>$n</out>'
)


class TestDecomposerPruning:
    def compile(self, query, catalog, projection):
        bound = bind_query(parse_query(query))
        return decompose(bound, catalog, projection=projection)

    def test_fragment_carries_consumed_columns_only(self):
        engine, _, _ = build_deployment()
        decomposed = self.compile(NARROW_QUERY, engine.catalog, True)
        fragment = decomposed.units[0].fragment
        # $t is consumed by the pushed condition only — the source
        # evaluates it before projecting, so it need not travel
        assert fragment.columns == ("n",)

    def test_projection_off_keeps_legacy_fragments(self):
        engine, _, _ = build_deployment()
        decomposed = self.compile(NARROW_QUERY, engine.catalog, False)
        fragment = decomposed.units[0].fragment
        assert fragment.columns == ()
        assert "|cols=" not in fragment_key(fragment)

    def test_residual_condition_keeps_its_column(self):
        engine, _, _ = build_deployment()
        # LIKE on a computed concat cannot push: $c must survive transfer
        query = (
            f'WHERE {WIDE_PATTERN} IN "customers", $c + $t = "x" '
            'CONSTRUCT <out>$n</out>'
        )
        decomposed = self.compile(query, engine.catalog, True)
        fragment = decomposed.units[0].fragment
        assert set(fragment.columns) >= {"n", "c", "t"}


class TestSourceProjection:
    def test_generated_sql_selects_the_subset(self):
        engine, source, _ = build_deployment(projection_pushdown=True)
        engine.query(NARROW_QUERY)
        assert source.last_sql is not None
        select_list = source.last_sql.split("FROM")[0]
        assert "name" in select_list
        assert "city" not in select_list

    def test_sql_scan_reads_only_projected_columns(self):
        engine, _, db = build_deployment(projection_pushdown=True)
        db.counters["columns_read"] = 0
        engine.query(NARROW_QUERY)
        decomposed = decompose(
            bind_query(parse_query(NARROW_QUERY)), engine.catalog,
            projection=True,
        )
        projected = decomposed.units[0].fragment.columns
        # the satellite contract: physical column reads equal the
        # projected width plus the pushed condition's column
        assert db.counters["columns_read"] == len(projected) + 1

    def test_transfer_counters_shrink(self):
        wide_engine, _, _ = build_deployment()
        narrow_engine, _, _ = build_deployment(projection_pushdown=True)
        wide = wide_engine.query(NARROW_QUERY)
        narrow = narrow_engine.query(NARROW_QUERY)
        assert ([serialize(e) for e in narrow.elements]
                == [serialize(e) for e in wide.elements])
        assert narrow.stats.values_transferred < wide.stats.values_transferred
        assert narrow.stats.bytes_transferred < wide.stats.bytes_transferred
        assert narrow.stats.rows_transferred == wide.stats.rows_transferred

    def test_incapable_source_is_never_asked_to_project(self):
        engine, source, _ = build_deployment()
        decomposed = decompose(
            bind_query(parse_query(NARROW_QUERY)), engine.catalog,
            projection=True,
        )
        fragment = decomposed.units[0].fragment
        # shadow the class profile on the instance: no projections
        source.capabilities = replace(source.capabilities, projections=False)
        with pytest.raises(CapabilityError):
            source.execute(fragment)


class TestColumnAwareContainment:
    def fragments(self):
        engine, _, _ = build_deployment()
        broad = decompose(
            bind_query(parse_query(NARROW_QUERY)), engine.catalog,
        ).units[0].fragment
        narrow = decompose(
            bind_query(parse_query(NARROW_QUERY)), engine.catalog,
            projection=True,
        ).units[0].fragment
        return broad, narrow

    def test_keys_differ_but_broad_serves_narrow(self):
        broad, narrow = self.fragments()
        assert fragment_key(broad) != fragment_key(narrow)
        answers, residual = matches(broad, narrow)
        assert answers and residual == []

    def test_narrow_never_serves_broad(self):
        broad, narrow = self.fragments()
        answers, _ = matches(narrow, broad)
        assert not answers

    def test_project_records_matches_source_projection(self):
        _, narrow = self.fragments()
        records = [
            Record({"i": 1, "n": "a", "c": "x", "t": 2}),
            Record({"i": 2, "n": "b", "c": "y", "t": 3}),
        ]
        projected = project_records(records, narrow)
        assert all(set(r.fields) == set(narrow.columns) for r in projected)

    def test_cached_broad_fragment_answers_projected_query(self):
        engine, source, _ = build_deployment(
            fragment_cache_bytes=500_000, projection_pushdown=False
        )
        warm = engine.query(NARROW_QUERY)  # populates the broad entry
        engine.projection_pushdown = True
        engine._plan_cache.clear()
        calls_before = source.network.calls
        served = engine.query(NARROW_QUERY)
        assert source.network.calls == calls_before  # no remote fetch
        assert served.stats.containment_hits == 1
        assert ([serialize(e) for e in served.elements]
                == [serialize(e) for e in warm.elements])


class TestWireAccounting:
    def test_payload_bytes_are_deterministic(self):
        network = NetworkModel()
        rows = [Record({"a": 1, "b": "xy"}), Record({"a": 2, "b": "z"})]
        network.account_payload(rows)
        first = (network.bytes_transferred, network.values_transferred)
        network.reset_counters()
        network.account_payload(rows)
        assert (network.bytes_transferred, network.values_transferred) == first
        assert network.values_transferred == 4

    def test_accounting_never_advances_the_clock(self):
        clock = SimClock()
        network = NetworkModel()
        network.clock = clock
        before = clock.now
        network.account_payload([Record({"a": 1})])
        assert clock.now == before

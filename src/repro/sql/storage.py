"""Row storage with constraint enforcement and index maintenance."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import SQLIntegrityError, SQLSchemaError
from repro.sql.index import HashIndex, Index, SortedIndex
from repro.sql.schema import TableSchema
from repro.sql.types import coerce


class Table:
    """An in-memory heap table: rows are tuples addressed by row id.

    Deleted slots hold ``None`` so row ids stay stable for the indexes;
    iteration skips them.  The primary key (if any) is backed by an
    implicit hash index used for constraint checking and fast lookup.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[tuple | None] = []
        self._live = 0
        self.indexes: dict[str, Index] = {}
        self._pk_index: HashIndex | None = None
        pk = schema.primary_key
        if pk is not None:
            self._pk_index = HashIndex(f"__pk_{schema.name}", pk.name)
            self.indexes[self._pk_index.name] = self._pk_index

    # -- properties --------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self._live

    # -- index management ---------------------------------------------------

    def create_index(self, name: str, column: str, ordered: bool = True) -> Index:
        """Create a secondary index and backfill it from existing rows."""
        if name in self.indexes:
            raise SQLSchemaError(f"index {name!r} already exists")
        self.schema.column(column)  # validates column exists
        index: Index = (
            SortedIndex(name, column) if ordered else HashIndex(name, column)
        )
        position = self.schema.column_index(column)
        for rowid, row in enumerate(self._rows):
            if row is not None:
                index.insert(row[position], rowid)
        self.indexes[name] = index
        return index

    def indexes_on(self, column: str) -> list[Index]:
        """All indexes (including the PK's) over ``column``."""
        return [index for index in self.indexes.values() if index.column == column]

    # -- row operations ------------------------------------------------------

    def insert(self, values: Iterable[Any]) -> int:
        """Insert a full-width row; returns its row id."""
        row = self._check_row(tuple(values))
        rowid = len(self._rows)
        self._rows.append(row)
        self._live += 1
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            index.insert(row[position], rowid)
        return rowid

    def insert_named(self, values: dict[str, Any]) -> int:
        """Insert from a column-name mapping; missing columns get NULL."""
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SQLSchemaError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        row = [values.get(column.name) for column in self.schema.columns]
        return self.insert(row)

    def get(self, rowid: int) -> tuple | None:
        if 0 <= rowid < len(self._rows):
            return self._rows[rowid]
        return None

    def delete(self, rowid: int) -> None:
        row = self._rows[rowid]
        if row is None:
            return
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            index.delete(row[position], rowid)
        self._rows[rowid] = None
        self._live -= 1

    def update(self, rowid: int, changes: dict[str, Any]) -> None:
        old = self._rows[rowid]
        if old is None:
            return
        new = list(old)
        for name, value in changes.items():
            position = self.schema.column_index(name)
            new[position] = value
        checked = self._check_row(tuple(new), replacing_rowid=rowid)
        for index in self.indexes.values():
            position = self.schema.column_index(index.column)
            if old[position] != checked[position]:
                index.delete(old[position], rowid)
                index.insert(checked[position], rowid)
        self._rows[rowid] = checked

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (rowid, row) for every live row."""
        for rowid, row in enumerate(self._rows):
            if row is not None:
                yield rowid, row

    def truncate(self) -> None:
        """Remove every row but keep the schema and (empty) indexes."""
        self._rows.clear()
        self._live = 0
        for name, index in list(self.indexes.items()):
            fresh: Index = (
                SortedIndex(name, index.column)
                if index.supports_ranges
                else HashIndex(name, index.column)
            )
            self.indexes[name] = fresh
        if self._pk_index is not None:
            self._pk_index = self.indexes[self._pk_index.name]  # type: ignore[assignment]

    # -- constraints ----------------------------------------------------------

    def _check_row(self, row: tuple, replacing_rowid: int | None = None) -> tuple:
        if len(row) != len(self.schema.columns):
            raise SQLSchemaError(
                f"table {self.name!r} expects {len(self.schema.columns)} values, "
                f"got {len(row)}"
            )
        coerced = tuple(
            coerce(value, column.type)
            for value, column in zip(row, self.schema.columns)
        )
        for value, column in zip(coerced, self.schema.columns):
            if value is None and (not column.nullable or column.primary_key):
                raise SQLIntegrityError(
                    f"column {column.name!r} of {self.name!r} may not be NULL"
                )
        pk = self.schema.primary_key
        if pk is not None and self._pk_index is not None:
            position = self.schema.column_index(pk.name)
            for existing in self._pk_index.lookup(coerced[position]):
                if existing != replacing_rowid and self._rows[existing] is not None:
                    raise SQLIntegrityError(
                        f"duplicate primary key {coerced[position]!r} "
                        f"in table {self.name!r}"
                    )
        return coerced

"""Dynamic data cleaning (paper, section 3.2).

The cleaning subsystem covers the anomaly classes the paper enumerates
— the object identity problem, the translation problem,
representational inadequacy, drift over time — with:

* extensible normalization functions (:mod:`normalize`) — "domain-
  specific and customer-provided normalization and matching functions
  are supported";
* string similarity metrics and weighted record matchers
  (:mod:`similarity`, :mod:`matchers`);
* blocking: naive all-pairs and the sorted-neighborhood method of
  Hernandez & Stolfo, the merge/purge baseline the paper cites
  (:mod:`sortedneighborhood`);
* a concordance database recording match decisions for replay
  (:mod:`concordance`) — "a separate data store ... created to serve to
  match records from two or more different original data sources";
* two-phase operation (:mod:`flows`): MINING (interactive, human input
  for disambiguation) and EXTRACTION (decisions replayed, exceptions
  trapped "to allow extraction to continue with cleanup applied post-hoc
  when a human is available");
* data lineage with rollback (:mod:`lineage`);
* interactive profiling tools for the mining phase (:mod:`mining`).
"""

from repro.cleaning.concordance import ConcordanceDB, Decision
from repro.cleaning.flows import (
    CleaningFlow,
    FlowMode,
    FlowResult,
    LinkStep,
    MatchStep,
    NormalizeStep,
)
from repro.cleaning.lineage import LineageLog
from repro.cleaning.matchers import FieldRule, MatchDecision, RecordMatcher
from repro.cleaning.normalize import (
    NormalizerRegistry,
    normalize_city,
    normalize_name,
    normalize_phone,
    normalize_street,
    normalize_whitespace,
)
from repro.cleaning.sortedneighborhood import (
    multi_pass_neighborhood,
    naive_pairs,
    sorted_neighborhood,
)
from repro.cleaning.similarity import (
    jaccard_tokens,
    jaro,
    jaro_winkler,
    levenshtein,
    ngram_similarity,
    string_similarity,
)

__all__ = [
    "CleaningFlow",
    "ConcordanceDB",
    "Decision",
    "FieldRule",
    "FlowMode",
    "FlowResult",
    "LineageLog",
    "LinkStep",
    "MatchDecision",
    "MatchStep",
    "NormalizeStep",
    "NormalizerRegistry",
    "RecordMatcher",
    "jaccard_tokens",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "multi_pass_neighborhood",
    "naive_pairs",
    "ngram_similarity",
    "normalize_city",
    "normalize_name",
    "normalize_phone",
    "normalize_street",
    "normalize_whitespace",
    "sorted_neighborhood",
    "string_similarity",
]

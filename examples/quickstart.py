"""Quickstart: federate a relational source and an XML document.

Builds a two-source deployment, maps it into mediated relations, and
runs XML-QL queries against the integrated view — the minimal version
of Figure 1's pipeline.

Run:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    Database,
    NetworkModel,
    NimbleEngine,
    RelationalSource,
    SimClock,
    SourceRegistry,
    XMLSource,
    serialize,
)


def build_deployment() -> NimbleEngine:
    clock = SimClock()
    registry = SourceRegistry(clock)

    # 1. A relational source: the CRM database.
    crm = Database("crm")
    crm.execute_script(
        """
        CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, city TEXT);
        INSERT INTO customers VALUES
          (1, 'Ann', 'Seattle'), (2, 'Bob', 'Portland'), (3, 'Cam', 'Seattle');
        """
    )
    registry.register(
        RelationalSource("crm", crm, network=NetworkModel(latency_ms=40, per_row_ms=0.5))
    )

    # 2. An XML source: a partner's book feed.
    registry.register(
        XMLSource(
            "partner",
            {
                "books": """
                <feed>
                  <book year="2000"><title>Data on the Web</title>
                    <buyer>Ann</buyer></book>
                  <book year="1999"><title>XML Handbook</title>
                    <buyer>Bob</buyer></book>
                  <book year="2001"><title>Mediators</title>
                    <buyer>Ann</buyer></book>
                </feed>
                """
            },
            network=NetworkModel(latency_ms=25, per_row_ms=0.2),
        )
    )

    # 3. The metadata server: mediated names over the sources.
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    return NimbleEngine(catalog)


def main() -> None:
    engine = build_deployment()

    print("== all Seattle customers ==")
    result = engine.query(
        """
        WHERE <c><name>$n</name><city>$city</city></c> IN "customers",
              $city = "Seattle"
        CONSTRUCT <customer>$n</customer>
        ORDER BY $n
        """
    )
    for element in result.elements:
        print(" ", serialize(element))

    print("\n== cross-model join: who bought which recent book ==")
    result = engine.query(
        """
        WHERE <c><name>$n</name><city>$city</city></c> IN "customers",
              <book year=$y><title>$t</title><buyer>$n</buyer></book>
                  IN "partner.books",
              $y >= 2000
        CONSTRUCT <purchase buyer=$n city=$city>
                    <title>$t</title>
                  </purchase>
        """
    )
    for element in result.elements:
        print(" ", serialize(element))

    print("\n== how the engine ran it ==")
    print(result.stats.plan_text)
    print(f"virtual time: {result.stats.elapsed_virtual_ms:.1f} ms, "
          f"fragments: {result.stats.fragments_executed}, "
          f"rows transferred: {result.stats.rows_transferred}")
    print(f"complete: {result.completeness.complete}")


if __name__ == "__main__":
    main()

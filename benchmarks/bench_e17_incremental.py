"""E17 — incremental view maintenance with scoped cache invalidation.

The claims under test:

1. **Delta refresh beats re-materialization**: at 1% churn, refreshing
   maintained views by draining the change feeds costs >= 10x less
   virtual time than re-running the view queries against the sources —
   refresh cost is proportional to the delta, not the base.
2. **Scoped invalidation beats the epoch bump**: a single-row update
   retains >= 90% of the unaffected cached fragments (key-range
   exclusion + in-place patching), where the old catalog-epoch bump
   evicted 100% of them.
3. **Staleness is visible**: the freshness monitor reports the
   sequence lag and the virtual-time staleness window between a write
   landing and the next sync applying it.
4. **Bit-identity**: after every churn batch, maintained view elements
   are byte-identical to a full re-execution of the view queries.

All timing is virtual (``SimClock``): the network model charges every
source fetch, delta refreshes charge only local per-row work.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.admin import FreshnessMonitor
from repro.core import NimbleEngine
from repro.materialize import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.simtime import SimClock
from repro.sources import NetworkModel, SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sql.database import Database
from repro.xmldm import serialize

N_ROWS = 4_000
CHURN_RATES = (0.001, 0.01, 0.1)
TARGET_SPEEDUP_AT_1PCT = 10.0
TARGET_RETENTION = 0.90
NETWORK = dict(latency_ms=5.0, per_row_ms=0.05)

VIEWS = {
    # rows mode: predicate on the key, so value churn never flips
    # membership and the delta path stays hot
    "lower_half": (
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", '
        f"$k < {N_ROWS // 2} CONSTRUCT <r><k>$k</k><v>$v</v></r>"
    ),
    # groups mode: count/sum/avg retract exactly, so every churn batch
    # propagates as per-group state arithmetic
    "by_group": (
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        "CONSTRUCT <g id=$g><n>count($v)</n><total>sum($v)</total>"
        "<mean>avg($v)</mean></g>"
    ),
}


def make_rows(n: int = N_ROWS) -> list[tuple[int, int, int]]:
    return [(k, (k * 13) % 24, (k * k * 7) % 1000) for k in range(n)]


def build_engine(rows, **engine_kw):
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    registry = SourceRegistry(SimClock())
    source = RelationalSource("s", db, network=NetworkModel(**NETWORK))
    registry.register(source)
    source.enable_cdc()
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    schema = MediatedSchema("m")
    for name, text in VIEWS.items():
        schema.define(ViewDef.from_text(name, text))
    catalog.add_schema(schema)
    engine = NimbleEngine(
        catalog, materializer=MaterializationManager(registry.clock),
        **engine_kw,
    )
    return engine, source


def churn_ops(rate: float, batch: int, next_key: int):
    """A deterministic churn batch: updates spread over the key space,
    one delete and one insert per 10 touched rows."""
    touched = max(1, int(N_ROWS * rate))
    ops = []
    for i in range(touched):
        key = (i * 37 + batch * 101) % N_ROWS
        if i % 10 == 3:
            ops.append(("delete", key, 0, 0))
        elif i % 10 == 7:
            ops.append(("insert", next_key, (key * 3) % 24, (key * 11) % 1000))
            next_key += 1
        else:
            ops.append(("update", key, (key + batch) % 24,
                        (key * 7 + batch) % 1000))
    return ops, next_key


def apply_ops(source, ops, dead: set) -> None:
    for kind, key, grp, v in ops:
        if kind == "insert":
            source.insert_row("t", {"k": key, "grp": grp, "v": v})
            dead.discard(key)
        elif key in dead:
            continue
        elif kind == "delete":
            source.delete_row("t", key)
            dead.add(key)
        else:
            source.update_row("t", key, {"grp": grp, "v": v})


def fresh_elements(engine, name):
    from repro.core.engine import PartialResultPolicy

    resolved = engine.catalog.resolve(name)
    result = engine._execute(
        resolved.query, PartialResultPolicy.FAIL, frozenset()
    )
    return [serialize(e) for e in result.elements]


# -- claim 1 + 3 + 4: refresh cost vs churn rate ------------------------------


def refresh_sweep(bench_stats):
    table = []
    speedups = {}
    staleness = {}
    identity_cells = 0
    for rate in CHURN_RATES:
        incremental, inc_source = build_engine(make_rows(), incremental=True)
        full, full_source = build_engine(make_rows())
        monitor = FreshnessMonitor(incremental)
        for name in VIEWS:
            incremental.maintain_view(name)
            full.materialize_view(name)
        inc_ms = full_ms = 0.0
        worst_staleness = 0.0
        next_key = N_ROWS
        dead: set = set()
        full_dead: set = set()
        for batch in range(3):
            ops, batch_next = churn_ops(rate, batch, next_key)
            apply_ops(inc_source, ops, dead)
            apply_ops(full_source, ops, full_dead)
            next_key = batch_next
            # writes land, then a beat passes before the next sync —
            # the freshness monitor must see that window
            incremental.clock.advance(50.0)
            full.clock.advance(50.0)
            worst_staleness = max(worst_staleness,
                                  monitor.worst_staleness_ms())

            started = incremental.clock.now
            incremental.sync_changes()
            inc_ms += incremental.clock.now - started

            started = full.clock.now
            for name in VIEWS:
                full.materialize_view(name)  # re-runs the view query
            full_ms += full.clock.now - started

            for name in VIEWS:
                maintained = [
                    serialize(e)
                    for e in incremental.incremental.views[name].elements
                ]
                assert maintained == fresh_elements(incremental, name), (
                    rate, batch, name,
                )
                identity_cells += 1
        bench_stats.stats.absorb(incremental.cdc_stats)
        speedup = full_ms / inc_ms if inc_ms else float("inf")
        speedups[rate] = speedup
        staleness[rate] = worst_staleness
        counters = incremental.cdc_stats.cdc_counters()
        table.append([
            f"{rate:.1%}", round(inc_ms, 2), round(full_ms, 2),
            round(speedup, 1), round(worst_staleness, 1),
            counters["views_delta_refreshed"],
            counters["views_full_rebuilt"],
        ])
    return table, speedups, staleness, identity_cells


# -- claim 2: scoped invalidation vs the epoch bump ---------------------------


N_BUCKETS = 20


def _bucket_queries():
    width = N_ROWS // N_BUCKETS
    return [
        (
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", '
            f"$k >= {b * width}, $k < {(b + 1) * width} "
            "CONSTRUCT <r>$k</r>"
        )
        for b in range(N_BUCKETS)
    ]


def _warm_and_count_hits(engine, bench_stats):
    hits = 0
    for query in _bucket_queries():
        result = bench_stats.absorb(engine.query(query))
        hits += result.stats.cache_counters()["fragment_cache_hits"]
    return hits


def invalidation_rows(bench_stats):
    # scoped: one keyed update, then re-probe every bucket
    scoped, source = build_engine(
        make_rows(), fragment_cache_bytes=2_000_000
    )
    _warm_and_count_hits(scoped, bench_stats)  # warm all 20 buckets
    source.update_row("t", 5, {"v": 999})
    report = scoped.sync_changes()
    scoped_hits = _warm_and_count_hits(scoped, bench_stats)

    # epoch bump: the pre-CDC behaviour — any write invalidates all
    bumped, bump_source = build_engine(
        make_rows(), fragment_cache_bytes=2_000_000
    )
    _warm_and_count_hits(bumped, bench_stats)
    bump_source.update_row("t", 5, {"v": 999})
    bumped.catalog.map_relation("epoch_bump", "s", "t")  # version moves
    bumped_hits = _warm_and_count_hits(bumped, bench_stats)

    scoped_retention = scoped_hits / N_BUCKETS
    bumped_retention = bumped_hits / N_BUCKETS
    table = [
        ["scoped (CDC)", report["cache_retained"], report["cache_patched"],
         report["cache_evicted"], scoped_hits, f"{scoped_retention:.0%}"],
        ["epoch bump", 0, 0, N_BUCKETS, bumped_hits,
         f"{bumped_retention:.0%}"],
    ]
    return table, scoped_retention, bumped_retention


# -- report -------------------------------------------------------------------


def report():
    from common import BenchStats, print_table, write_bench_json

    bench_stats = BenchStats()
    bench_stats.reset()

    sweep_table, speedups, staleness, identity_cells = refresh_sweep(
        bench_stats
    )
    print_table(
        f"E17: delta refresh vs full re-materialization ({N_ROWS:,} rows, "
        "3 churn batches each)",
        ["churn", "delta ms", "full ms", "speedup", "staleness ms",
         "delta refreshes", "rebuilds"],
        sweep_table,
    )
    inval_table, scoped_retention, bumped_retention = invalidation_rows(
        bench_stats
    )
    print_table(
        f"E17: scoped invalidation vs epoch bump ({N_BUCKETS} disjoint "
        "key-range fragments, one keyed update)",
        ["strategy", "retained", "patched", "evicted", "re-probe hits",
         "retention"],
        inval_table,
    )
    print(f"\nbit-identity: {identity_cells} churn-batch x view cells verified")

    at_1pct = speedups[0.01]
    assert at_1pct >= TARGET_SPEEDUP_AT_1PCT, (
        f"delta refresh speedup {at_1pct:.1f}x at 1% churn is below the "
        f"{TARGET_SPEEDUP_AT_1PCT}x target"
    )
    assert scoped_retention >= TARGET_RETENTION, (
        f"scoped invalidation retained {scoped_retention:.0%}, below the "
        f"{TARGET_RETENTION:.0%} target"
    )
    assert bumped_retention == 0.0, "epoch bump unexpectedly retained entries"
    assert all(value > 0 for value in staleness.values()), (
        "staleness window was never observed"
    )

    write_bench_json(
        "e17_incremental",
        ["churn", "delta ms", "full ms", "speedup", "staleness ms",
         "delta refreshes", "rebuilds"],
        sweep_table,
        headline={
            "speedup_at_1pct_churn": round(at_1pct, 1),
            "scoped_retention": scoped_retention,
            "epoch_bump_retention": bumped_retention,
            "bit_identity_cells": identity_cells,
            "worst_staleness_ms_at_1pct": round(staleness[0.01], 1),
        },
        extra_tables={
            "invalidation": (
                ["strategy", "retained", "patched", "evicted",
                 "re-probe hits", "retention"],
                inval_table,
            ),
        },
        stats=bench_stats,
    )
    return sweep_table


if __name__ == "__main__":
    report()

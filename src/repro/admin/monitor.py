"""Source health and cache health monitoring for the management tools."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simtime import SimClock
from repro.sources.registry import SourceRegistry


@dataclass
class SourceHealth:
    """Probe history of one source."""

    name: str
    probes: int = 0
    up_probes: int = 0
    last_up_ms: float | None = None
    last_down_ms: float | None = None
    currently_up: bool = True

    @property
    def uptime_fraction(self) -> float:
        return self.up_probes / self.probes if self.probes else 1.0


class HealthMonitor:
    """Periodically probes every registered source's availability.

    Probes are explicit (``probe_all``) so tests and the console control
    when virtual time advances; real deployments would run this on a
    timer.
    """

    def __init__(self, registry: SourceRegistry, clock: SimClock | None = None):
        self.registry = registry
        self.clock = clock or registry.clock
        self.health: dict[str, SourceHealth] = {}

    def probe_all(self) -> dict[str, bool]:
        """Probe every source once; returns name -> up?."""
        outcome = {}
        now = self.clock.now
        for source in self.registry:
            record = self.health.setdefault(source.name, SourceHealth(source.name))
            up = source.available()
            record.probes += 1
            record.currently_up = up
            if up:
                record.up_probes += 1
                record.last_up_ms = now
            else:
                record.last_down_ms = now
            outcome[source.name] = up
        return outcome

    def watch(self, duration_ms: float, interval_ms: float = 1_000.0) -> None:
        """Advance virtual time, probing on an interval."""
        elapsed = 0.0
        while elapsed < duration_ms:
            self.clock.advance(interval_ms)
            elapsed += interval_ms
            self.probe_all()

    def unhealthy(self, threshold: float = 0.9) -> list[SourceHealth]:
        """Sources whose observed uptime is below ``threshold``."""
        return [
            record
            for record in self.health.values()
            if record.uptime_fraction < threshold
        ]


class CacheMonitor:
    """Surfaces an engine's caching layers for the management console.

    The paper's management tools "enable specification of which data
    sources ... should be materialized"; operating the on-demand layer
    needs the complementary read side — occupancy, hit rates, and which
    sources dominate the budget.
    """

    def __init__(self, engine):
        self.engine = engine

    def snapshot(self) -> dict[str, Any]:
        """One dict of fragment-cache and plan-cache health."""
        engine = self.engine
        report: dict[str, Any] = {
            "plan_cache_entries": len(engine._plan_cache),
            "plan_cache_hits": engine.plan_cache_hits,
            "plan_cache_misses": engine.plan_cache_misses,
        }
        cache = engine.fragment_cache
        if cache is None:
            report["fragment_cache"] = None
            return report
        summary = cache.summary()
        summary["by_source"] = cache.entries_by_source()
        summary["fill_fraction"] = (
            summary["bytes"] / summary["budget_bytes"]
            if summary["budget_bytes"] else 0.0
        )
        report["fragment_cache"] = summary
        return report

    def hot_sources(self, top: int = 5) -> list[tuple[str, int]]:
        """Sources by live cache entries, busiest first."""
        cache = self.engine.fragment_cache
        if cache is None:
            return []
        ranked = sorted(
            cache.entries_by_source().items(),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:top]

"""Delta propagation through the algebra.

Each class here is the *delta counterpart* of one algebra operator: it
transforms a batch of row-level changes the way the operator transforms
rows, so a materialized result can be updated in place instead of
recomputed.  A :class:`RowDelta` carries an after-image (``row``) and a
before-image (``before``):

========  ===========  ============
op        row          before
========  ===========  ============
insert    new row      —
update    new row      old row
delete    —            old row
========  ===========  ============

Operators raise :class:`DeltaUnsupported` when a change has no sound
in-place shape (a duplicate leaving :class:`DeltaDistinct`, a retracted
min/max extreme in :class:`DeltaGroups`); the incremental materializer
catches it and falls back to a full rebuild — falling back is always
correct, propagating wrongly never is.

:class:`DeltaGroups` is the GroupBy/Aggregate counterpart.  It reuses
the mergeable slot layout of :class:`repro.algebra.merge.PartialGroups`
and extends it with **retraction**: count/sum/avg subtract exactly;
min/max retraction is only unsupported when the retracted value *is*
the current extreme (the next extreme is unknowable without the member
list).  Aggregate values live in the states; group emission order and
representatives are re-derived from the maintained base rows at
finalize time, so output is bit-identical to
:func:`construct.build_elements` over the full row stream.  (Float sums
carry the usual caveat: ``a + b - b`` can differ from ``a`` in the last
ulp; integer and string aggregates are exact.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.algebra.construct import ConstructTemplate, _numeric_or_self
from repro.algebra.merge import (
    _build_one,
    _finish,
    collect_aggregates,
    flat_template,
    group_key,
    template_group_vars,
)
from repro.algebra.tuples import BindingTuple
from repro.xmldm.nodes import Element
from repro.xmldm.values import NULL, Null, compare_values


class DeltaUnsupported(Exception):
    """The change has no sound delta shape; rebuild instead."""


@dataclass(frozen=True)
class RowDelta:
    """One row-level change flowing through delta operators."""

    op: str  # insert | update | delete
    row: BindingTuple | None = None
    before: BindingTuple | None = None


def _as_inserts(rows: Iterable[BindingTuple]) -> list[RowDelta]:
    return [RowDelta("insert", row=row) for row in rows]


# -- stateless counterparts --------------------------------------------------


class DeltaSelect:
    """Counterpart of Select: filtering changes the *kind* of a change.

    An update whose before-image failed the predicate but whose
    after-image passes *enters* the selection — it becomes an insert;
    one that flips the other way becomes a delete.
    """

    def __init__(self, predicate: Callable[[BindingTuple], bool]):
        self.predicate = predicate

    def apply_delta(self, deltas: Sequence[RowDelta]) -> list[RowDelta]:
        out: list[RowDelta] = []
        for delta in deltas:
            before_in = delta.before is not None and self.predicate(delta.before)
            after_in = delta.row is not None and self.predicate(delta.row)
            if delta.op == "insert":
                if after_in:
                    out.append(delta)
            elif delta.op == "delete":
                if before_in:
                    out.append(delta)
            elif after_in and before_in:
                out.append(delta)
            elif after_in:
                out.append(RowDelta("insert", row=delta.row))
            elif before_in:
                out.append(RowDelta("delete", before=delta.before))
        return out


class DeltaProject:
    """Counterpart of Project: images narrow like rows do."""

    def __init__(self, variables: Sequence[str]):
        self.variables = tuple(variables)

    def apply_delta(self, deltas: Sequence[RowDelta]) -> list[RowDelta]:
        return [
            RowDelta(
                delta.op,
                row=None if delta.row is None else delta.row.project(self.variables),
                before=(
                    None if delta.before is None
                    else delta.before.project(self.variables)
                ),
            )
            for delta in deltas
        ]


class DeltaCompute:
    """Counterpart of Compute: extend both images.

    ``BindingTuple.extend`` returns None on a unification conflict —
    the row drops out of the stream, which for an update means the
    change flips kind exactly as in :class:`DeltaSelect`.
    """

    def __init__(self, var: str, fn: Callable[[BindingTuple], Any]):
        self.var = var
        self.fn = fn

    def _extend(self, row: BindingTuple | None) -> BindingTuple | None:
        if row is None:
            return None
        return row.extend(self.var, self.fn(row))

    def apply_delta(self, deltas: Sequence[RowDelta]) -> list[RowDelta]:
        out: list[RowDelta] = []
        for delta in deltas:
            row = self._extend(delta.row)
            before = self._extend(delta.before)
            if delta.op == "insert":
                if row is not None:
                    out.append(RowDelta("insert", row=row))
            elif delta.op == "delete":
                if before is not None:
                    out.append(RowDelta("delete", before=before))
            elif row is not None and before is not None:
                out.append(RowDelta("update", row=row, before=before))
            elif row is not None:
                out.append(RowDelta("insert", row=row))
            elif before is not None:
                out.append(RowDelta("delete", before=before))
        return out


class DeltaDistinct:
    """Counterpart of Distinct, with a multiplicity map as state.

    An insert surfaces only when its key's count goes 0 -> 1; a delete
    only when it goes 1 -> 0.  A delete or update touching a key whose
    count stays positive is unsupported: Distinct emits the *first*
    occurrence, and without positions we cannot know whether the
    surviving duplicate sat earlier or later in the stream.
    """

    def __init__(self, variables: Sequence[str] | None = None):
        self.variables = tuple(variables) if variables is not None else None
        self._counts: dict[str, int] = {}

    def _key(self, row: BindingTuple) -> str:
        view = row if self.variables is None else row.project(self.variables)
        return repr(sorted(view.as_dict().items()))

    def observe(self, row: BindingTuple) -> None:
        """Fold one base row into the multiplicity map (initial load)."""
        key = self._key(row)
        self._counts[key] = self._counts.get(key, 0) + 1

    def apply_delta(self, deltas: Sequence[RowDelta]) -> list[RowDelta]:
        out: list[RowDelta] = []
        for delta in deltas:
            if delta.op == "update":
                expanded = [
                    RowDelta("delete", before=delta.before),
                    RowDelta("insert", row=delta.row),
                ]
            else:
                expanded = [delta]
            for step in expanded:
                if step.op == "insert":
                    key = self._key(step.row)
                    count = self._counts.get(key, 0)
                    self._counts[key] = count + 1
                    if count == 0:
                        out.append(step)
                else:
                    key = self._key(step.before)
                    count = self._counts.get(key, 0)
                    if count <= 0:
                        raise DeltaUnsupported(
                            "distinct retraction of an unseen row"
                        )
                    if count > 1:
                        raise DeltaUnsupported(
                            "distinct retraction with surviving duplicates"
                        )
                    del self._counts[key]
                    out.append(step)
        return out


class DeltaJoin:
    """Counterpart of a join: delta rows meet the *other* side's rows.

    ``delta R join S``: each changed left row pairs with its matching
    right rows (equi-join on ``shared`` when given, else cross).  Sound
    for state maintenance (aggregates, counts); positions of the output
    rows are not tracked.
    """

    def __init__(self, other_rows: Sequence[BindingTuple],
                 shared: Sequence[str] = ()):
        self.other_rows = list(other_rows)
        self.shared = tuple(shared)

    def _partners(self, row: BindingTuple) -> list[BindingTuple]:
        merged: list[BindingTuple] = []
        for other in self.other_rows:
            if any(
                compare_values(row.get(var, NULL), other.get(var, NULL)) != 0
                for var in self.shared
            ):
                continue
            combined = row.merge(other)
            if combined is not None:
                merged.append(combined)
        return merged

    def apply_delta(self, deltas: Sequence[RowDelta]) -> list[RowDelta]:
        out: list[RowDelta] = []
        for delta in deltas:
            if delta.op == "insert":
                out.extend(
                    RowDelta("insert", row=pair)
                    for pair in self._partners(delta.row)
                )
            elif delta.op == "delete":
                out.extend(
                    RowDelta("delete", before=pair)
                    for pair in self._partners(delta.before)
                )
            else:
                befores = self._partners(delta.before)
                afters = self._partners(delta.row)
                if len(befores) == len(afters):
                    out.extend(
                        RowDelta("update", row=after, before=before)
                        for before, after in zip(befores, afters)
                    )
                else:
                    out.extend(
                        RowDelta("delete", before=pair) for pair in befores
                    )
                    out.extend(
                        RowDelta("insert", row=pair) for pair in afters
                    )
        return out


# -- grouped aggregation with retraction -------------------------------------


class _DeltaGroupState:
    """One group's mergeable slots plus a live member count."""

    __slots__ = ("slots", "members")

    def __init__(self, n_aggregates: int):
        # count -> int; sum/avg -> [acc, present]; min/max -> [value, True]
        self.slots: list[Any] = [None] * n_aggregates
        self.members = 0


class DeltaGroups:
    """Counterpart of GroupBy/Aggregate over one flat construct template.

    ``observe`` folds initial base rows; ``apply_delta`` folds changes
    (retracting before-images, observing after-images); ``finalize``
    renders elements from the maintained states, taking group order and
    representatives from the caller's base rows.
    """

    def __init__(self, template: ConstructTemplate):
        if not flat_template(template):
            raise DeltaUnsupported(
                "delta aggregation requires a flat template"
            )
        self.template = template
        self.group_vars = template_group_vars(template)
        self.aggregates = collect_aggregates(template)
        self.groups: dict[tuple, _DeltaGroupState] = {}

    # -- folding ----------------------------------------------------------

    def observe(self, row: BindingTuple) -> None:
        state = self._state(row, create=True)
        state.members += 1
        for index, item in enumerate(self.aggregates):
            value = self._value(row, item)
            if value is None:
                continue
            self._fold(state, index, item.kind, value)

    def retract(self, row: BindingTuple) -> None:
        state = self._state(row, create=False)
        if state is None or state.members <= 0:
            raise DeltaUnsupported("retraction of a row from an unknown group")
        state.members -= 1
        for index, item in enumerate(self.aggregates):
            value = self._value(row, item)
            if value is None:
                continue
            self._unfold(state, index, item.kind, value)
        if state.members == 0:
            del self.groups[group_key(row, self.group_vars)]

    def apply_delta(self, deltas: Sequence[RowDelta]) -> None:
        for delta in deltas:
            if delta.before is not None:
                self.retract(delta.before)
            if delta.row is not None:
                self.observe(delta.row)

    # -- rendering --------------------------------------------------------

    def finalize(self, base_rows: Iterable[BindingTuple]) -> list[Element]:
        """Elements in base-row first-seen group order, values from state.

        Exactly :func:`construct.build_elements`' grouping: the first
        base row of each group is its representative, groups emit in
        first-seen order.
        """
        seen: set[tuple] = set()
        elements: list[Element] = []
        for row in base_rows:
            key = group_key(row, self.group_vars)
            if key in seen:
                continue
            seen.add(key)
            state = self.groups.get(key)
            if state is None:
                raise DeltaUnsupported("group state missing for a base row")
            synthetic = {
                f"__agg_{index}": _finish(item.kind, state.slots[index])
                for index, item in enumerate(self.aggregates)
            }
            elements.append(_build_one(self.template, row, synthetic))
        return elements

    # -- internals --------------------------------------------------------

    def _state(self, row: BindingTuple,
               create: bool) -> _DeltaGroupState | None:
        key = group_key(row, self.group_vars)
        state = self.groups.get(key)
        if state is None and create:
            state = _DeltaGroupState(len(self.aggregates))
            self.groups[key] = state
        return state

    def _value(self, row: BindingTuple, item) -> Any | None:
        value = row.get(item.var, NULL)
        if isinstance(value, Null) or value is None:
            return None
        if item.kind != "count":
            value = _numeric_or_self(value)
        return value

    def _fold(self, state: _DeltaGroupState, index: int, kind: str,
              value: Any) -> None:
        slot = state.slots[index]
        if kind == "count":
            state.slots[index] = (slot or 0) + 1
            return
        if kind in ("sum", "avg"):
            if slot is None:
                slot = [0, 0]
                state.slots[index] = slot
            slot[0] = slot[0] + value
            slot[1] += 1
            return
        if slot is None:
            state.slots[index] = [value, True]
            return
        result = compare_values(value, slot[0])
        if (kind == "min" and result < 0) or (kind == "max" and result > 0):
            slot[0] = value

    def _unfold(self, state: _DeltaGroupState, index: int, kind: str,
                value: Any) -> None:
        slot = state.slots[index]
        if kind == "count":
            if not slot:
                raise DeltaUnsupported("count retraction below zero")
            state.slots[index] = slot - 1 or None
            return
        if kind in ("sum", "avg"):
            if slot is None or slot[1] <= 0:
                raise DeltaUnsupported("sum/avg retraction below zero")
            slot[0] = slot[0] - value
            slot[1] -= 1
            if slot[1] == 0:
                state.slots[index] = None
            return
        # min/max: a retracted non-extreme leaves the extreme untouched;
        # retracting the extreme itself is the non-invertible case
        if slot is None:
            raise DeltaUnsupported("min/max retraction from empty state")
        if compare_values(value, slot[0]) == 0:
            raise DeltaUnsupported("retracted value is the current extreme")


def select_deltas(
    deltas: Sequence[RowDelta],
    predicates: Sequence[Callable[[BindingTuple], bool]],
) -> list[RowDelta]:
    """Run a change batch through a chain of residual selections."""
    current = list(deltas)
    for predicate in predicates:
        current = DeltaSelect(predicate).apply_delta(current)
    return current


__all__ = [
    "DeltaCompute",
    "DeltaDistinct",
    "DeltaGroups",
    "DeltaJoin",
    "DeltaProject",
    "DeltaSelect",
    "DeltaUnsupported",
    "RowDelta",
    "select_deltas",
    "_as_inserts",
]

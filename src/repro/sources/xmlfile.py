"""Wrapper for XML document sources.

An XML source exports named documents as relations.  Its "native query
capability" is tree-pattern matching with simple selections — the
wrapper evaluates the fragment's pattern and conditions *at the source*
(before transfer), so pushing a selective pattern genuinely reduces the
rows charged to the network model.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.algebra.pattern import match_pattern
from repro.query.exprs import compile_predicate
from repro.algebra.tuples import BindingTuple
from repro.errors import CapabilityError
from repro.sources.base import CapabilityProfile, DataSource, Fragment, NetworkModel
from repro.simtime import SimClock
from repro.xmldm.document import Document
from repro.xmldm.parser import parse_document
from repro.xmldm.schema import RecordType
from repro.xmldm.values import NULL, Record


class XMLSource(DataSource):
    """A source serving XML documents (files, feeds, exports)."""

    capabilities = CapabilityProfile(
        selections=True,
        projections=True,
        joins=False,  # one document pattern per fragment
        condition_ops=frozenset({"=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"}),
    )

    def __init__(
        self,
        name: str,
        documents: dict[str, Document | str] | None = None,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
    ):
        super().__init__(name, clock, network)
        self.documents: dict[str, Document] = {}
        for doc_name, document in (documents or {}).items():
            self.add_document(doc_name, document)

    def add_document(self, name: str, document: Document | str) -> None:
        """Register a document (XML text is parsed on the spot)."""
        if isinstance(document, str):
            document = parse_document(document, name=name)
        self.documents[name] = document

    def replace_document(self, name: str, document: Document | str) -> None:
        """Swap in a new snapshot of a document, synthesizing deltas.

        XML feeds rarely emit change records — they hand over a fresh
        file.  When CDC is enabled and the relation has a declared key,
        the subtree-hash differ turns the old and new versions into
        insert/update/delete records (reset when the difference has no
        delta shape); otherwise a single ``reset`` is emitted.
        """
        if isinstance(document, str):
            document = parse_document(document, name=name)
        old = self.documents.get(name)
        self.documents[name] = document
        if self.changelog is None:
            return
        key_field = self.changelog.key_field(name)
        if old is None or key_field is None:
            self.changelog.emit_reset(name)
            self.tracer.event("snapshot_reset", source=self.name,
                              document=name)
            return
        from repro.cdc.differ import diff_documents

        with self.tracer.span("snapshot_diff", name=name, source=self.name,
                              document=name) as span:
            counts = {"insert": 0, "update": 0, "delete": 0, "reset": 0}
            for change in diff_documents(old.root, document.root, key_field):
                counts[change.op] = counts.get(change.op, 0) + 1
                if change.op == "reset":
                    self.changelog.emit_reset(name)
                else:
                    self.changelog.emit(
                        change.op,
                        name,
                        key=change.key,
                        node=change.node,
                        before_node=change.before_node,
                    )
            if span.recording:
                span.set(**counts)

    def relations(self) -> dict[str, RecordType]:
        # Documents are semi-structured: exported with an open record type.
        return {name: RecordType(name) for name in self.documents}

    def cardinality(self, relation: str) -> int:
        document = self.documents.get(relation)
        if document is None:
            return 0
        return sum(1 for _ in document.root.child_elements())

    def _fetch_all(self, relation: str):
        document = self.documents.get(relation)
        if document is None:
            raise CapabilityError(
                f"source {self.name!r} has no document {relation!r}"
            )
        return [document]

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        if len(fragment.accesses) != 1:
            raise CapabilityError("XML fragments access exactly one document")
        access = fragment.accesses[0]
        document = self.documents.get(access.relation)
        if document is None:
            raise CapabilityError(
                f"source {self.name!r} has no document {access.relation!r}"
            )
        predicates = [compile_predicate(c) for c in fragment.conditions]
        variables = access.pattern.variables()
        if fragment.columns:
            # projection pushdown: conditions still see the full match,
            # only the transferred record narrows
            keep = set(fragment.columns)
            output_vars = [var for var in variables if var in keep]
        else:
            output_vars = list(variables)
        pattern = access.pattern
        seed = BindingTuple()
        tag = None if pattern.tag == "*" else pattern.tag
        for candidate in document.root.descendants_or_self(tag):
            for match in match_pattern(pattern, candidate, seed):
                if all(predicate(match) for predicate in predicates):
                    yield Record(
                        {var: match.get(var, NULL) for var in output_vars}
                    )

"""Abstract syntax trees for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# -- expressions --------------------------------------------------------------


class Expr:
    """Base class for SQL expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool or None


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` parameter."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    column: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%', '||', 'AND', 'OR'
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # 'NOT', '-'
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # normalized upper-case
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


# -- statements ----------------------------------------------------------------


class Statement:
    """Base class for SQL statements."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None
    star: bool = False  # SELECT * or SELECT t.*
    star_table: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    kind: str  # 'INNER', 'LEFT', 'CROSS'
    condition: Expr | None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: tuple[SelectItem, ...]
    table: TableRef | None
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: tuple[str, ...]  # empty means full-width
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: Expr | None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    name: str
    table: str
    column: str


@dataclass(frozen=True)
class DropTableStmt(Statement):
    table: str

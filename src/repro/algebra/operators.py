"""Core tuple-at-a-time operators: select, project, compute, sort, union."""

from __future__ import annotations

from functools import cmp_to_key
from typing import Any, Callable, Iterator, Sequence

from repro.algebra.tuples import BindingTuple
from repro.xmldm.values import compare_values

Predicate = Callable[[BindingTuple], bool]
ValueFn = Callable[[BindingTuple], Any]


class Operator:
    """Base class: an iterable of binding tuples with explain support.

    ``rows_out`` counts tuples produced across all iterations; the
    engine resets counters per query to report per-operator cardinality.
    """

    def __init__(self, *children: "Operator"):
        self.children: tuple[Operator, ...] = children
        self.rows_out = 0

    def __iter__(self) -> Iterator[BindingTuple]:
        for row in self._produce():
            self.rows_out += 1
            yield row

    def _produce(self) -> Iterator[BindingTuple]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, depth: int = 0) -> str:
        lines = ["  " * depth + self.describe()]
        for child in self.children:
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def reset_counters(self) -> None:
        self.rows_out = 0
        for child in self.children:
            child.reset_counters()

    def walk(self) -> Iterator["Operator"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Select(Operator):
    """Keep tuples satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate, label: str = ""):
        super().__init__(child)
        self.predicate = predicate
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            if self.predicate(row):
                yield row

    def describe(self) -> str:
        return f"Select({self.label})" if self.label else "Select"


class Project(Operator):
    """Keep only the named variables."""

    def __init__(self, child: Operator, variables: Sequence[str]):
        super().__init__(child)
        self.variables = tuple(variables)

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            yield row.project(self.variables)

    def describe(self) -> str:
        return f"Project({', '.join('$' + v for v in self.variables)})"


class Compute(Operator):
    """Bind a new variable to a computed value."""

    def __init__(self, child: Operator, var: str, fn: ValueFn, label: str = ""):
        super().__init__(child)
        self.var = var
        self.fn = fn
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            extended = row.extend(self.var, self.fn(row))
            if extended is not None:
                yield extended

    def describe(self) -> str:
        suffix = f" = {self.label}" if self.label else ""
        return f"Compute(${self.var}{suffix})"


class Distinct(Operator):
    """Remove duplicate tuples over the named variables (default: all)."""

    def __init__(self, child: Operator, variables: Sequence[str] | None = None):
        super().__init__(child)
        self.variables = tuple(variables) if variables is not None else None

    def _produce(self) -> Iterator[BindingTuple]:
        seen: list[BindingTuple] = []
        seen_keys: set[str] = set()
        for row in self.children[0]:
            view = row if self.variables is None else row.project(self.variables)
            key = repr(sorted(view.as_dict().items()))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            yield row

    def describe(self) -> str:
        if self.variables is None:
            return "Distinct"
        return f"Distinct({', '.join('$' + v for v in self.variables)})"


class Union(Operator):
    """Concatenate the outputs of several children (bag union)."""

    def __init__(self, *children: Operator):
        super().__init__(*children)

    def _produce(self) -> Iterator[BindingTuple]:
        for child in self.children:
            yield from child

    def describe(self) -> str:
        return f"Union({len(self.children)})"


class Sort(Operator):
    """Sort by key expressions using the model's total value order."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[ValueFn, bool]],
        label: str = "",
    ):
        """``keys`` is a list of (value function, descending?) pairs."""
        super().__init__(child)
        self.keys = list(keys)
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        rows = list(self.children[0])

        def compare(a: BindingTuple, b: BindingTuple) -> int:
            for fn, descending in self.keys:
                result = compare_values(fn(a), fn(b))
                if result != 0:
                    return -result if descending else result
            return 0

        rows.sort(key=cmp_to_key(compare))
        yield from rows

    def describe(self) -> str:
        return f"Sort({self.label or len(self.keys)})"


class Limit(Operator):
    """Pass through at most ``count`` tuples (after any ordering)."""

    def __init__(self, child: Operator, count: int):
        super().__init__(child)
        if count < 0:
            raise ValueError("limit must be non-negative")
        self.count = count

    def _produce(self) -> Iterator[BindingTuple]:
        produced = 0
        for row in self.children[0]:
            if produced >= self.count:
                return
            produced += 1
            yield row

    def describe(self) -> str:
        return f"Limit({self.count})"

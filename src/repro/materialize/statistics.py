"""Workload statistics: what the view selector learns from.

Section 3.3 lists "we may need to adjust the set of materialized views
over time depending on the query load" among the open problems; the
stats here keep a sliding window so the selector tracks drift.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator

from repro.sources.base import Fragment


@dataclass
class FragmentObservation:
    """One remote execution of a fragment."""

    key: str
    cost_ms: float
    rows: int
    at_ms: float


@dataclass
class FragmentProfile:
    """Aggregated view of one fragment across the window."""

    key: str
    fragment: Fragment
    source_name: str
    uses: int = 0
    total_cost_ms: float = 0.0
    total_rows: int = 0

    @property
    def mean_cost_ms(self) -> float:
        return self.total_cost_ms / self.uses if self.uses else 0.0

    @property
    def mean_rows(self) -> float:
        return self.total_rows / self.uses if self.uses else 0.0


class WorkloadStats:
    """Sliding-window record of fragment executions."""

    def __init__(self, window: int = 500):
        self.window = window
        self._observations: Deque[FragmentObservation] = deque()
        self._fragments: dict[str, tuple[Fragment, str]] = {}

    def record(
        self, key: str, fragment: Fragment, source_name: str,
        cost_ms: float, rows: int, at_ms: float,
    ) -> None:
        self._fragments[key] = (fragment, source_name)
        self._observations.append(FragmentObservation(key, cost_ms, rows, at_ms))
        while len(self._observations) > self.window:
            self._observations.popleft()

    def profiles(self) -> list[FragmentProfile]:
        """Aggregate the current window, most-used first."""
        by_key: dict[str, FragmentProfile] = {}
        for observation in self._observations:
            fragment, source_name = self._fragments[observation.key]
            profile = by_key.get(observation.key)
            if profile is None:
                profile = FragmentProfile(observation.key, fragment, source_name)
                by_key[observation.key] = profile
            profile.uses += 1
            profile.total_cost_ms += observation.cost_ms
            profile.total_rows += observation.rows
        return sorted(by_key.values(), key=lambda p: p.uses, reverse=True)

    def total_observations(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[FragmentObservation]:
        return iter(self._observations)

"""Retry with exponential backoff over the virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
import random


@dataclass
class RetryPolicy:
    """How many times to retry a failed source call, and how to wait.

    Backoff after the ``attempt``-th failure (0-based) is
    ``base_backoff_ms * multiplier ** attempt`` capped at
    ``max_backoff_ms``, scaled by a deterministic jitter of up to
    ``±jitter`` drawn from a seeded RNG.  The executor charges the wait
    to the virtual clock, so retried queries *pay* for their patience in
    the latency benchmarks.
    """

    max_attempts: int = 3
    base_backoff_ms: float = 50.0
    multiplier: float = 2.0
    max_backoff_ms: float = 5_000.0
    jitter: float = 0.1
    seed: int = 23

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the jitter RNG (fresh deterministic replay)."""
        self._rng = random.Random(self.seed)

    def backoff_ms(self, attempt: int) -> float:
        """Wait before retry number ``attempt + 1`` (attempt is 0-based)."""
        raw = min(
            self.base_backoff_ms * self.multiplier ** attempt,
            self.max_backoff_ms,
        )
        if self.jitter:
            raw *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return raw

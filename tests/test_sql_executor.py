"""End-to-end behavioural tests for the SQL engine."""

import pytest

from repro.errors import (
    ExecutionError,
    PlanningError,
    SQLIntegrityError,
    SQLSchemaError,
)
from repro.sql import Database
from repro.sql.executor import like_match


@pytest.fixture
def db():
    database = Database("test")
    database.execute_script(
        """
        CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, city TEXT,
                                tier INTEGER);
        CREATE TABLE orders (oid INTEGER PRIMARY KEY, cust_id INTEGER,
                             total REAL, status TEXT);
        CREATE INDEX idx_city ON customers (city);
        INSERT INTO customers VALUES
          (1,'Ann','Seattle',1),(2,'Bob','Portland',2),
          (3,'Cam','Seattle',1),(4,'Dee','Boise',3);
        INSERT INTO orders VALUES
          (10,1,99.5,'open'),(11,1,15.0,'closed'),(12,2,42.0,'open'),
          (13,3,7.25,'open'),(14,9,1.0,'open');
        """
    )
    return database


class TestSelect:
    def test_projection_and_filter(self, db):
        result = db.execute("SELECT name FROM customers WHERE tier = 1 ORDER BY name")
        assert result.rows == [("Ann",), ("Cam",)]

    def test_star_expansion(self, db):
        result = db.execute("SELECT * FROM customers WHERE id = 4")
        assert result.columns == ("id", "name", "city", "tier")
        assert result.rows == [(4, "Dee", "Boise", 3)]

    def test_expression_select_item(self, db):
        result = db.execute("SELECT total * 2 AS double FROM orders WHERE oid = 10")
        assert result.scalar() == 199.0
        assert result.columns == ("double",)

    def test_string_concat(self, db):
        result = db.execute(
            "SELECT name || '@' || city FROM customers WHERE id = 1"
        )
        assert result.scalar() == "Ann@Seattle"

    def test_in_list(self, db):
        result = db.execute("SELECT name FROM customers WHERE id IN (1, 4)")
        assert {r[0] for r in result.rows} == {"Ann", "Dee"}

    def test_between(self, db):
        result = db.execute("SELECT COUNT(*) FROM orders WHERE total BETWEEN 5 AND 50")
        assert result.scalar() == 3

    def test_like(self, db):
        result = db.execute("SELECT name FROM customers WHERE city LIKE 'Se%'")
        assert len(result) == 2

    def test_is_null_behaviour(self, db):
        db.execute("INSERT INTO customers VALUES (5, 'Eve', NULL, NULL)")
        assert db.execute(
            "SELECT name FROM customers WHERE city IS NULL"
        ).rows == [("Eve",)]
        # NULL never matches an equality
        assert ("Eve",) not in db.execute(
            "SELECT name FROM customers WHERE city = 'Seattle'"
        ).rows

    def test_not(self, db):
        result = db.execute("SELECT COUNT(*) FROM customers WHERE NOT tier = 1")
        assert result.scalar() == 2

    def test_order_by_desc_and_alias(self, db):
        result = db.execute(
            "SELECT name, tier AS level FROM customers ORDER BY level DESC, name"
        )
        assert result.rows[0] == ("Dee", 3)

    def test_order_by_position(self, db):
        result = db.execute("SELECT name FROM customers ORDER BY 1 DESC")
        assert result.rows[0] == ("Dee",)

    def test_limit_offset(self, db):
        result = db.execute("SELECT name FROM customers ORDER BY id LIMIT 2 OFFSET 1")
        assert result.rows == [("Bob",), ("Cam",)]

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT city FROM customers")
        assert len(result) == 3

    def test_params(self, db):
        result = db.execute("SELECT name FROM customers WHERE id = ?", [3])
        assert result.scalar() == "Cam"

    def test_missing_param_errors(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT name FROM customers WHERE id = ?")

    def test_division_by_zero_yields_null(self, db):
        assert db.execute("SELECT 1 / 0 FROM customers WHERE id = 1").scalar() is None

    def test_scalar_functions(self, db):
        row = db.execute(
            "SELECT UPPER(name), LENGTH(city), SUBSTR(city, 1, 3) "
            "FROM customers WHERE id = 1"
        ).rows[0]
        assert row == ("ANN", 7, "Sea")

    def test_coalesce(self, db):
        db.execute("INSERT INTO customers VALUES (6, 'Fay', NULL, 1)")
        assert db.execute(
            "SELECT COALESCE(city, 'unknown') FROM customers WHERE id = 6"
        ).scalar() == "unknown"


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT c.name, o.total FROM customers c JOIN orders o"
            " ON c.id = o.cust_id ORDER BY o.oid"
        )
        assert result.rows[0] == ("Ann", 99.5)
        assert len(result) == 4  # order 14 has no matching customer

    def test_left_join_nulls(self, db):
        result = db.execute(
            "SELECT c.name, o.oid FROM customers c LEFT JOIN orders o"
            " ON c.id = o.cust_id WHERE o.oid IS NULL"
        )
        assert result.rows == [("Dee", None)]

    def test_join_with_residual_condition(self, db):
        result = db.execute(
            "SELECT c.name FROM customers c JOIN orders o"
            " ON c.id = o.cust_id AND o.total > 50"
        )
        assert result.rows == [("Ann",)]

    def test_cross_join(self, db):
        result = db.execute("SELECT COUNT(*) FROM customers, orders")
        assert result.scalar() == 20

    def test_three_way_join(self, db):
        db.execute_script(
            "CREATE TABLE regions (city TEXT, region TEXT);"
            "INSERT INTO regions VALUES ('Seattle','WA'),('Portland','OR');"
        )
        result = db.execute(
            "SELECT DISTINCT r.region FROM customers c"
            " JOIN orders o ON c.id = o.cust_id"
            " JOIN regions r ON c.city = r.city ORDER BY r.region"
        )
        assert result.rows == [("OR",), ("WA",)]

    def test_self_join_with_aliases(self, db):
        result = db.execute(
            "SELECT a.name, b.name FROM customers a JOIN customers b"
            " ON a.city = b.city WHERE a.id < b.id"
        )
        assert result.rows == [("Ann", "Cam")]

    def test_where_pushed_into_join(self, db):
        result = db.execute(
            "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id"
            " WHERE o.status = 'closed'"
        )
        assert result.rows == [("Ann",)]


class TestAggregates:
    def test_global_aggregates(self, db):
        row = db.execute(
            "SELECT COUNT(*), SUM(total), MIN(total), MAX(total) FROM orders"
        ).rows[0]
        assert row == (5, 164.75, 1.0, 99.5)

    def test_avg(self, db):
        assert db.execute("SELECT AVG(tier) FROM customers").scalar() == 1.75

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT city) FROM customers").scalar() == 3

    def test_aggregates_skip_nulls(self, db):
        db.execute("INSERT INTO orders VALUES (15, 1, NULL, 'open')")
        assert db.execute("SELECT COUNT(total) FROM orders").scalar() == 5
        assert db.execute("SELECT SUM(total) FROM orders").scalar() == 164.75

    def test_empty_input_aggregates(self, db):
        row = db.execute(
            "SELECT COUNT(*), SUM(total) FROM orders WHERE oid > 1000"
        ).rows[0]
        assert row == (0, None)

    def test_group_by_having(self, db):
        result = db.execute(
            "SELECT cust_id, COUNT(*) AS n FROM orders GROUP BY cust_id"
            " HAVING COUNT(*) > 1"
        )
        assert result.rows == [(1, 2)]

    def test_group_by_orders_by_aggregate(self, db):
        result = db.execute(
            "SELECT status, SUM(total) AS t FROM orders GROUP BY status"
            " ORDER BY t DESC"
        )
        assert result.rows[0][0] == "open"

    def test_aggregate_outside_group_context_raises(self, db):
        with pytest.raises((ExecutionError, PlanningError)):
            db.execute("SELECT name FROM customers WHERE COUNT(*) > 1")

    def test_having_without_group_is_rejected(self, db):
        from repro.errors import SQLSyntaxError

        with pytest.raises((PlanningError, SQLSyntaxError)):
            db.execute("SELECT name FROM customers HAVING name = 'Ann'")


class TestDML:
    def test_update_with_expression(self, db):
        db.execute("UPDATE orders SET total = total + 1 WHERE status = 'open'")
        assert db.execute("SELECT total FROM orders WHERE oid = 10").scalar() == 100.5
        assert db.execute("SELECT total FROM orders WHERE oid = 11").scalar() == 15.0

    def test_delete_with_filter(self, db):
        db.execute("DELETE FROM orders WHERE total < 10")
        assert db.execute("SELECT COUNT(*) FROM orders").scalar() == 3

    def test_delete_all(self, db):
        db.execute("DELETE FROM orders")
        assert db.execute("SELECT COUNT(*) FROM orders").scalar() == 0

    def test_insert_into_named_columns(self, db):
        db.execute("INSERT INTO customers (id, name) VALUES (9, 'Zoe')")
        assert db.execute("SELECT city FROM customers WHERE id = 9").scalar() is None

    def test_pk_violation_via_sql(self, db):
        with pytest.raises(SQLIntegrityError):
            db.execute("INSERT INTO customers VALUES (1, 'Dup', 'X', 1)")


class TestCatalogAndErrors:
    def test_unknown_table(self, db):
        with pytest.raises(SQLSchemaError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT nope FROM customers")

    def test_ambiguous_column(self, db):
        with pytest.raises(ExecutionError):
            db.execute(
                "SELECT city FROM customers a JOIN customers b ON a.id = b.id"
            )

    def test_drop_table(self, db):
        db.execute("DROP TABLE orders")
        assert "orders" not in db.table_names()

    def test_row_count_and_distinct(self, db):
        assert db.row_count("customers") == 4
        assert db.distinct_count("customers", "city") == 3

    def test_dicts_helper(self, db):
        rows = db.execute("SELECT id, name FROM customers WHERE id = 1").dicts()
        assert rows == [{"id": 1, "name": "Ann"}]


class TestPlanner:
    def test_equality_uses_index(self, db):
        plan = db.explain("SELECT name FROM customers WHERE city = 'Seattle'")
        assert "IndexScan" in plan

    def test_pk_lookup_uses_index(self, db):
        plan = db.explain("SELECT name FROM customers WHERE id = 1")
        assert "IndexScan" in plan

    def test_range_uses_sorted_index(self, db):
        plan = db.explain("SELECT name FROM customers WHERE city > 'P'")
        assert "range" in plan

    def test_no_index_means_seq_scan(self, db):
        plan = db.explain("SELECT name FROM customers WHERE tier = 1")
        assert "SeqScan" in plan

    def test_equi_join_uses_hash_join(self, db):
        plan = db.explain(
            "SELECT * FROM customers c JOIN orders o ON c.id = o.cust_id"
        )
        assert "HashJoin" in plan

    def test_non_equi_join_uses_nested_loop(self, db):
        plan = db.explain(
            "SELECT * FROM customers c JOIN orders o ON c.id < o.cust_id"
        )
        assert "NestedLoopJoin" in plan

    def test_index_scan_reduces_rows_scanned(self, db):
        db.counters["rows_scanned"] = 0
        db.execute("SELECT name FROM customers WHERE city = 'Boise'")
        indexed = db.counters["rows_scanned"]
        db.counters["rows_scanned"] = 0
        db.execute("SELECT name FROM customers WHERE tier = 3")
        scanned = db.counters["rows_scanned"]
        assert indexed < scanned


class TestLikeMatcher:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),
            ("", "%", True),
        ],
    )
    def test_like(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

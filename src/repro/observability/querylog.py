"""The bounded query log: one record per top-level query.

The administrator's first question against a slow mediator is "which
queries were slow, and were their answers complete?"  The log keeps the
most recent ``capacity`` executions with a privacy-friendly identity
(a SHA-256 prefix of the query text plus a short preview), the elapsed
virtual/wall times, the completeness verdict, and a slow flag evaluated
against ``slow_threshold_ms`` of *virtual* time — the modelled remote
cost, which is what an administrator can actually tune.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable


def query_hash(text: str) -> str:
    """Stable short identity of a query text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass
class QueryLogRecord:
    """One logged execution."""

    trace_id: str
    query_hash: str
    preview: str
    elapsed_virtual_ms: float
    elapsed_wall_ms: float
    complete: bool
    missing_sources: tuple[str, ...] = ()
    stale_sources: tuple[str, ...] = ()
    slow: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    #: serve counts per origin kind, e.g. ``{"cache": 3, "live": 1}`` —
    #: the provenance summary (populated whether or not the engine
    #: attaches full Provenance records to answers)
    origins: dict[str, int] = field(default_factory=dict)


class QueryLog:
    """A ring buffer of :class:`QueryLogRecord`, newest last."""

    def __init__(self, capacity: int = 256,
                 slow_threshold_ms: float | None = None,
                 slow_thresholds: dict[str, float] | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.slow_threshold_ms = slow_threshold_ms
        #: per-``query_hash`` overrides of the global slow threshold —
        #: a hot dashboard query can be held to a tighter bound than
        #: an analytical batch query sharing the same log
        self.slow_thresholds: dict[str, float] = dict(slow_thresholds or {})
        self._records: deque[QueryLogRecord] = deque(maxlen=capacity)
        self.total_logged = 0
        self.total_slow = 0
        self.total_incomplete = 0

    def set_slow_threshold(self, query_hash: str, threshold_ms: float) -> None:
        """Override the slow threshold for one query hash."""
        if threshold_ms < 0:
            raise ValueError("threshold_ms must be >= 0")
        self.slow_thresholds[query_hash] = threshold_ms

    def record(
        self,
        text: str,
        elapsed_virtual_ms: float,
        elapsed_wall_ms: float,
        completeness: Any,
        trace_id: str = "",
        counters: dict[str, int] | None = None,
        origins: dict[str, int] | None = None,
    ) -> QueryLogRecord:
        """Log one execution; returns the stored record."""
        digest = query_hash(text)
        threshold = self.slow_thresholds.get(digest, self.slow_threshold_ms)
        slow = threshold is not None and elapsed_virtual_ms >= threshold
        preview = " ".join(text.split())[:80]
        entry = QueryLogRecord(
            trace_id=trace_id,
            query_hash=digest,
            preview=preview,
            elapsed_virtual_ms=elapsed_virtual_ms,
            elapsed_wall_ms=elapsed_wall_ms,
            complete=completeness.complete,
            missing_sources=tuple(completeness.missing_sources),
            stale_sources=tuple(completeness.stale_sources),
            slow=slow,
            counters=dict(counters or {}),
            origins=dict(origins or {}),
        )
        self._records.append(entry)
        self.total_logged += 1
        if slow:
            self.total_slow += 1
        if not entry.complete:
            self.total_incomplete += 1
        return entry

    def recent(self, last: int | None = None) -> list[QueryLogRecord]:
        """The newest ``last`` records (all retained records by default)."""
        records = list(self._records)
        if last is not None:
            records = records[-last:]
        return records

    def slow_queries(self) -> list[QueryLogRecord]:
        """Retained records that crossed the slow threshold."""
        return [record for record in self._records if record.slow]

    def incomplete_queries(self) -> list[QueryLogRecord]:
        return [record for record in self._records if not record.complete]

    def records_for(self, query_hash: str) -> list[QueryLogRecord]:
        """Retained records for one query hash, oldest first."""
        return [
            record for record in self._records
            if record.query_hash == query_hash
        ]

    def summary(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "retained": len(self._records),
            "total_logged": self.total_logged,
            "total_slow": self.total_slow,
            "total_incomplete": self.total_incomplete,
            "slow_threshold_ms": self.slow_threshold_ms,
            "slow_threshold_overrides": len(self.slow_thresholds),
        }

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[QueryLogRecord]:
        return iter(self._records)

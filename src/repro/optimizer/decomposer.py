"""Query decomposition: split a query into per-source fragments.

"When an XML-QL query is posed to the integration engine it is parsed
and broken into multiple fragments based on the target data sources"
(section 2.1).  The decomposer resolves every pattern clause through the
catalog, groups clauses that one source can answer together (when its
profile allows joins and the clauses share variables), pushes each
condition into the unique fragment that can evaluate it, and leaves the
rest as residual work for the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

from repro.errors import PlanningError
from repro.mediator.catalog import Catalog, DocumentTarget
from repro.mediator.mapping import RelationMapping
from repro.mediator.schema import ViewDef
from repro.query import ast as qast
from repro.query.binder import BoundQuery
from repro.query.translate import pattern_to_tree
from repro.sources.base import Access, DataSource, Fragment
from repro.sources.webservice import WebServiceSource


@dataclass
class FragmentUnit:
    """One remote fragment plus planning metadata."""

    fragment: Fragment
    source: DataSource
    variables: tuple[str, ...]
    dependent: bool = False

    def describe(self) -> str:
        marker = " (dependent)" if self.dependent else ""
        return self.fragment.describe() + marker


@dataclass
class ViewUnit:
    """A pattern over a mediated view — answered by recursive execution."""

    clause: qast.PatternClause
    view: ViewDef
    variables: tuple[str, ...]

    def describe(self) -> str:
        return f"View({self.view.name}; vars={','.join(self.variables)})"


Unit = Union[FragmentUnit, ViewUnit]


@dataclass
class DecomposedQuery:
    """The decomposition result handed to the plan builder."""

    bound: BoundQuery
    units: list[Unit]
    residual_conditions: list[qast.Expr]
    pushed_conditions: list[qast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        lines = [unit.describe() for unit in self.units]
        for condition in self.residual_conditions:
            lines.append(f"Residual({condition})")
        return "\n".join(lines)


def decompose(
    bound: BoundQuery,
    catalog: Catalog,
    pushdown: bool = True,
    projection: bool = False,
) -> DecomposedQuery:
    """Decompose ``bound`` against ``catalog``.

    ``pushdown=False`` disables both condition pushdown and same-source
    fragment merging — the naive-compilation baseline benchmark E5
    measures against.  ``projection=True`` additionally prunes each
    fragment's transferred columns to the variables the rest of the
    query actually consumes (projection pushdown).
    """
    query = bound.query
    raw_units: list[Unit] = []
    for index, clause in enumerate(query.pattern_clauses):
        resolved = catalog.resolve(clause.source)
        variables = bound.clause_vars[index]
        if isinstance(resolved, ViewDef):
            raw_units.append(ViewUnit(clause, resolved, variables))
            continue
        if isinstance(resolved, RelationMapping):
            source = catalog.registry.get(resolved.source_name)
            access = Access(resolved.source_relation, resolved.rewrite_pattern(clause.pattern))
        else:
            assert isinstance(resolved, DocumentTarget)
            source = catalog.registry.get(resolved.source_name)
            access = Access(resolved.relation, pattern_to_tree(clause.pattern))
        fragment = Fragment(source.name, (access,))
        unit = FragmentUnit(fragment, source, variables)
        _mark_dependent(unit)
        raw_units.append(unit)

    units = _merge_same_source(raw_units) if pushdown else raw_units
    residual = [c.expr for c in query.condition_clauses]
    pushed: list[qast.Expr] = []
    if pushdown:
        residual = _push_conditions(units, residual, pushed)
    if projection:
        _prune_columns(units, bound, residual)
    _check_dependencies(units, bound)
    return DecomposedQuery(bound, units, residual, pushed)


def _prune_columns(
    units: list[Unit], bound: BoundQuery, residual: list[qast.Expr]
) -> None:
    """Projection pushdown: restrict fragments to the consumed columns.

    A variable must survive transfer when anything downstream of the
    scan reads it: the CONSTRUCT template, a residual (engine-side)
    condition, an ORDER BY key, a join with another unit, or a
    dependent unit's input parameters.  Pushed conditions do *not* keep
    a column alive — the source evaluates them before projecting.
    """
    query = bound.query
    needed: set[str] = set(query.construct.variables())
    for condition in residual:
        needed |= qast.expr_variables(condition)
    for spec in query.order_by:
        needed |= qast.expr_variables(spec.expr)
    for unit in units:
        if isinstance(unit, FragmentUnit) and unit.fragment.input_vars:
            needed |= set(unit.fragment.input_vars)
    for unit in units:
        if not isinstance(unit, FragmentUnit) or unit.dependent:
            continue
        if not unit.source.capabilities.projections:
            continue
        shared: set[str] = set()
        for other in units:
            if other is not unit:
                shared |= set(unit.variables) & set(other.variables)
        keep = tuple(
            var for var in unit.variables if var in needed or var in shared
        )
        if keep and len(keep) < len(unit.variables):
            unit.fragment = replace(unit.fragment, columns=keep)


def _mark_dependent(unit: FragmentUnit) -> None:
    """Set input variables for call-only (binding-pattern) sources."""
    source = unit.source
    inner = getattr(source, "inner", source)  # unwrap FlakySource
    if not source.capabilities.requires_parameters:
        return
    if not isinstance(inner, WebServiceSource):
        raise PlanningError(
            f"source {source.name!r} requires parameters but is not an "
            "endpoint source"
        )
    access = unit.fragment.accesses[0]
    required_fields = inner.required_inputs(access.relation)
    field_to_var = {
        child.tag: child.text_var
        for child in access.pattern.children
        if child.text_var is not None
    }
    input_vars = []
    for field_name in required_fields:
        var = field_to_var.get(field_name)
        if var is None:
            raise PlanningError(
                f"endpoint {access.relation!r} requires input field "
                f"{field_name!r}, but the pattern does not bind it"
            )
        input_vars.append(var)
    unit.fragment = replace(unit.fragment, input_vars=tuple(input_vars))
    unit.dependent = True


def _merge_same_source(units: list[Unit]) -> list[Unit]:
    """Merge var-connected fragments of one join-capable source."""
    merged: list[Unit] = []
    for unit in units:
        if not isinstance(unit, FragmentUnit):
            merged.append(unit)
            continue
        if unit.dependent or not unit.source.capabilities.joins:
            merged.append(unit)
            continue
        target = None
        for candidate in merged:
            if (
                isinstance(candidate, FragmentUnit)
                and not candidate.dependent
                and candidate.source is unit.source
                and set(candidate.variables) & set(unit.variables)
            ):
                target = candidate
                break
        if target is None:
            merged.append(unit)
        else:
            target.fragment = replace(
                target.fragment,
                accesses=target.fragment.accesses + unit.fragment.accesses,
            )
            target.variables = tuple(
                dict.fromkeys(target.variables + unit.variables)
            )
    return merged


def _push_conditions(
    units: list[Unit], conditions: list[qast.Expr], pushed_out: list[qast.Expr]
) -> list[qast.Expr]:
    """Push each condition into the one fragment that can take it."""
    residual: list[qast.Expr] = []
    for condition in conditions:
        needed = qast.expr_variables(condition)
        home = None
        for unit in units:
            if not isinstance(unit, FragmentUnit):
                continue
            if unit.dependent:
                continue  # parameterized endpoints take no selections
            if needed <= set(unit.variables) and unit.source.capabilities.accepts_condition(condition):
                home = unit
                break
        if home is None:
            residual.append(condition)
        else:
            home.fragment = replace(
                home.fragment,
                conditions=home.fragment.conditions + (condition,),
            )
            pushed_out.append(condition)
    return residual


def _check_dependencies(units: list[Unit], bound: BoundQuery) -> None:
    """Every dependent fragment's inputs must come from some other unit."""
    for unit in units:
        if not isinstance(unit, FragmentUnit) or not unit.dependent:
            continue
        providers: set[str] = set()
        for other in units:
            if other is unit:
                continue
            providers.update(other.variables)
        missing = set(unit.fragment.input_vars) - providers
        if missing:
            raise PlanningError(
                f"dependent fragment on {unit.source.name!r} needs "
                f"{sorted('$' + v for v in missing)} from another clause"
            )

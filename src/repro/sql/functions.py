"""Scalar and aggregate functions for the SQL engine."""

from __future__ import annotations

import datetime
from typing import Any, Callable

from repro.errors import SQLError

# -- scalar functions ---------------------------------------------------------


def _upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _trim(value: Any) -> Any:
    return None if value is None else str(value).strip()


def _substr(value: Any, start: Any, length: Any = None) -> Any:
    if value is None or start is None:
        return None
    text = str(value)
    begin = max(int(start) - 1, 0)  # SQL SUBSTR is 1-based
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]

def _abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    return round(value, int(digits or 0))


def _coalesce(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _nullif(a: Any, b: Any) -> Any:
    return None if a == b else a


def _replace(value: Any, old: Any, new: Any) -> Any:
    if value is None or old is None or new is None:
        return None
    return str(value).replace(str(old), str(new))


def _date(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, datetime.date):
        return value
    return datetime.date.fromisoformat(str(value))


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "UPPER": _upper,
    "LOWER": _lower,
    "LENGTH": _length,
    "TRIM": _trim,
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "ABS": _abs,
    "ROUND": _round,
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "REPLACE": _replace,
    "DATE": _date,
}

# -- aggregates ----------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Aggregator:
    """Accumulates one aggregate over the rows of a group.

    SQL semantics: NULL inputs are skipped by every aggregate; ``COUNT(*)``
    counts rows; SUM/AVG over no (non-NULL) inputs yield NULL while COUNT
    yields 0.
    """

    def __init__(self, name: str, distinct: bool, star: bool):
        if name not in AGGREGATE_NAMES:
            raise SQLError(f"unknown aggregate {name!r}")
        self.name = name
        self.distinct = distinct
        self.star = star
        self._count = 0
        self._sum: float | int = 0
        self._min: Any = None
        self._max: Any = None
        self._seen: set[Any] | None = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.star:
            self._count += 1
            return
        if value is None:
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1
        if self.name in ("SUM", "AVG"):
            self._sum += value
        if self.name == "MIN":
            self._min = value if self._min is None else min(self._min, value)
        if self.name == "MAX":
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> Any:
        if self.name == "COUNT":
            return self._count
        if self._count == 0:
            return None
        if self.name == "SUM":
            return self._sum
        if self.name == "AVG":
            return self._sum / self._count
        if self.name == "MIN":
            return self._min
        return self._max


def is_aggregate_call(name: str) -> bool:
    return name in AGGREGATE_NAMES

"""The cost model: fragment cardinality and latency estimation.

Estimates are deliberately humble.  Section 3.3: "we do not have good
cost estimates for querying over remote data sources (and therefore it's
hard to compare the costs with the alternative of materialization)".
:class:`CostModel` exposes that honesty as ``noise``: a deterministic
multiplicative error applied to every remote estimate, which experiment
E2 sweeps to measure how materialized-view selection degrades as
estimates get worse.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.query import ast as qast
from repro.sources.base import DataSource, Fragment

#: selectivity guesses per condition operator (classical folklore values)
_SELECTIVITY = {
    "=": 0.1,
    "!=": 0.9,
    "<": 0.3,
    "<=": 0.3,
    ">": 0.3,
    ">=": 0.3,
    "LIKE": 0.25,
}


def condition_selectivity(expr: qast.Expr) -> float:
    """Estimated fraction of rows a condition keeps."""
    if isinstance(expr, qast.BinOp):
        if expr.op == "AND":
            return condition_selectivity(expr.left) * condition_selectivity(expr.right)
        if expr.op == "OR":
            left = condition_selectivity(expr.left)
            right = condition_selectivity(expr.right)
            return min(1.0, left + right - left * right)
        return _SELECTIVITY.get(expr.op, 0.5)
    if isinstance(expr, qast.Not):
        return max(0.05, 1.0 - condition_selectivity(expr.operand))
    return 0.5


def _var_literal(expr: qast.Expr) -> tuple[str, str, object] | None:
    """Decompose ``$v OP literal`` to (var, op, literal) when possible.

    Literal-on-the-left comparisons are flipped so statistics always see
    the column on the left.
    """
    if not isinstance(expr, qast.BinOp):
        return None
    if expr.op not in ("=", "!=", "<", "<=", ">", ">="):
        return None
    left, right, op = expr.left, expr.right, expr.op
    flipped = {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
               ">": "<", ">=": "<="}
    if isinstance(right, qast.Var) and isinstance(left, qast.Literal):
        left, right, op = right, left, flipped[op]
    if isinstance(left, qast.Var) and isinstance(right, qast.Literal):
        return left.name, op, right.value
    return None


@dataclass(frozen=True)
class FragmentEstimate:
    """Estimated rows and virtual-time cost of executing one fragment."""

    rows: float
    cost_ms: float


class CostModel:
    """Estimates fragment costs from catalog statistics.

    ``noise`` > 0 turns on deterministic lognormal estimation error with
    standard deviation ``noise`` (in log space), seeded per fragment key
    so repeated estimates of the same fragment are consistently wrong —
    the realistic failure mode for remote sources.
    """

    #: per-row processing cost at the integration engine (local work)
    LOCAL_ROW_MS = 0.001

    def __init__(self, noise: float = 0.0, seed: int = 13):
        self.noise = noise
        self.seed = seed
        #: observed-cardinality feedback (``rows_for(fragment)``) — when
        #: bound, a real observation beats every folklore guess below
        self.feedback = None
        #: cache-residency probe (``fragment -> row count | None``) —
        #: when bound, resident fragments cost local scans, not network
        self.residency = None
        #: column-statistics probe (``(fragment, var) -> ColumnStats |
        #: None``) — when bound, observed value distributions price
        #: simple predicates instead of the folklore constants
        self.column_stats = None

    def bind_feedback(self, feedback) -> None:
        """Prefer observed row counts from ``feedback`` over guesses."""
        self.feedback = feedback

    def bind_residency(self, residency) -> None:
        """Consult ``residency(fragment)`` for cached row counts."""
        self.residency = residency

    def bind_column_stats(self, lookup) -> None:
        """Consult ``lookup(fragment, var)`` for observed column stats."""
        self.column_stats = lookup

    def _stats_selectivity(self, fragment: Fragment,
                           condition: qast.Expr) -> float | None:
        """Statistics-based selectivity of one condition, or None."""
        if self.column_stats is None:
            return None
        decomposed = _var_literal(condition)
        if decomposed is None:
            return None
        var, op, literal = decomposed
        stats = self.column_stats(fragment, var)
        if stats is None:
            return None
        return stats.selectivity(op, literal)

    def estimate_rows(self, fragment: Fragment, source: DataSource) -> float:
        if self.feedback is not None:
            observed = self.feedback.rows_for(fragment)
            if observed is not None:
                return max(float(observed), 0.01)
        cardinalities = [
            max(1, source.cardinality(access.relation))
            for access in fragment.accesses
        ]
        if len(cardinalities) == 1:
            rows = float(cardinalities[0])
        else:
            # Equi-joined accesses: assume key joins — the largest relation
            # bounds the result.
            rows = float(max(cardinalities))
        for condition in fragment.conditions:
            from_stats = self._stats_selectivity(fragment, condition)
            rows *= (
                from_stats if from_stats is not None
                else condition_selectivity(condition)
            )
        if fragment.input_vars:
            rows = max(1.0, rows * 0.01)  # parameterized calls are selective
        return max(rows, 0.01)

    def estimate(self, fragment: Fragment, source: DataSource) -> FragmentEstimate:
        if self.residency is not None:
            resident = self.residency(fragment)
            if resident is not None:
                # cache-resident: a local scan of known size, no network
                # latency and no estimation noise — we have the rows
                return FragmentEstimate(float(resident),
                                        self.local_cost(resident))
        rows = self.estimate_rows(fragment, source)
        cost = source.network.latency_ms + rows * source.network.per_row_ms
        return FragmentEstimate(rows, self._perturb(cost, fragment))

    def local_cost(self, rows: float) -> float:
        """Cost of processing ``rows`` locally (materialized data)."""
        return rows * self.LOCAL_ROW_MS

    def _perturb(self, cost: float, fragment: Fragment) -> float:
        if self.noise <= 0:
            return cost
        rng = random.Random((self.seed, fragment.describe()).__repr__())
        factor = math.exp(rng.gauss(0.0, self.noise))
        return cost * factor

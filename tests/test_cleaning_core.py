"""Unit tests for similarity metrics, normalizers and matchers."""

import pytest

from repro.cleaning import (
    FieldRule,
    MatchDecision,
    NormalizerRegistry,
    RecordMatcher,
    jaccard_tokens,
    jaro,
    jaro_winkler,
    levenshtein,
    ngram_similarity,
    string_similarity,
)
from repro.cleaning.normalize import (
    normalize_email,
    normalize_name,
    normalize_phone,
    normalize_street,
    normalize_whitespace,
    strip_punctuation,
)
from repro.errors import CleaningError
from repro.xmldm.values import NULL, Record


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,distance",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("abc", "xabc", 1),
            ("kitten", "sitting", 3),
            ("", "abc", 3),
        ],
    )
    def test_distances(self, a, b, distance):
        assert levenshtein(a, b) == distance

    def test_similarity_range(self):
        assert string_similarity("abc", "abc") == 1.0
        assert string_similarity("abc", "xyz") == 0.0
        assert 0 < string_similarity("smith", "smyth") < 1


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_winkler_no_boost_without_prefix(self):
        assert jaro_winkler("xmartha", "ymarhta") == pytest.approx(
            jaro("xmartha", "ymarhta")
        )


class TestTokenMetrics:
    def test_jaccard(self):
        assert jaccard_tokens("a b c", "b c d") == pytest.approx(0.5)
        assert jaccard_tokens("", "") == 1.0

    def test_ngram(self):
        assert ngram_similarity("night", "nacht") > 0.2
        assert ngram_similarity("same", "same") == 1.0
        assert ngram_similarity("", "x") == 0.0


class TestNormalizers:
    def test_whitespace(self):
        assert normalize_whitespace("  a \t b\nc ") == "a b c"

    def test_punctuation_keeps_hyphens(self):
        assert strip_punctuation("o'brien-smith, jr.") == "o'brien-smith jr"

    def test_name_title_and_order(self):
        assert normalize_name("Dr. Smith, John") == "john smith"
        assert normalize_name("JOHN   SMITH JR.") == "john smith"

    def test_street_abbreviations(self):
        assert normalize_street("1938 Fairview Ave. E") == "1938 fairview avenue east"
        assert normalize_street("12 N Main St") == "12 north main street"

    def test_phone_digits_only(self):
        assert normalize_phone("(206) 555-0100") == "2065550100"
        assert normalize_phone("1-206-555-0100") == "2065550100"

    def test_email(self):
        assert normalize_email("John.Doe+spam@Example.COM") == "john.doe@example.com"

    def test_registry_chain(self):
        registry = NormalizerRegistry()
        chain = registry.chain("case", "whitespace")
        assert chain("  A  B ") == "a b"

    def test_registry_extension(self):
        registry = NormalizerRegistry()
        registry.register("reverse", lambda v: v[::-1])
        assert registry.apply("reverse", "abc") == "cba"

    def test_registry_duplicate_rejected(self):
        registry = NormalizerRegistry()
        with pytest.raises(CleaningError):
            registry.register("name", str)

    def test_registry_unknown(self):
        with pytest.raises(CleaningError):
            NormalizerRegistry().get("nope")

    def test_apply_null_gives_empty(self):
        assert NormalizerRegistry().apply("case", NULL) == ""


class TestRecordMatcher:
    def matcher(self, **kwargs):
        return RecordMatcher(
            [
                FieldRule("name", metric=jaro_winkler, weight=2.0),
                FieldRule("city", weight=1.0),
            ],
            **kwargs,
        )

    def test_identical_records_match(self):
        matcher = self.matcher()
        a = Record({"name": "john smith", "city": "seattle"})
        assert matcher.decide(a, a) is MatchDecision.MATCH

    def test_different_records_nonmatch(self):
        matcher = self.matcher()
        a = Record({"name": "john smith", "city": "seattle"})
        b = Record({"name": "rosa garcia", "city": "boise"})
        assert matcher.decide(a, b) is MatchDecision.NONMATCH

    def test_close_records_possible(self):
        matcher = self.matcher(match_threshold=0.97, possible_threshold=0.65)
        a = Record({"name": "john smith", "city": "seattle"})
        b = Record({"name": "jon smith", "city": "tacoma"})
        assert matcher.decide(a, b) is MatchDecision.POSSIBLE

    def test_missing_fields_excluded(self):
        matcher = self.matcher()
        a = Record({"name": "john smith", "city": NULL})
        b = Record({"name": "john smith"})
        score = matcher.score(a, b)
        assert score.score == pytest.approx(1.0)
        assert "city" not in score.per_field

    def test_cross_field_rule(self):
        matcher = RecordMatcher([FieldRule("name", field_b="fullname")])
        a = Record({"name": "ann lee"})
        b = Record({"fullname": "ann lee"})
        assert matcher.decide(a, b) is MatchDecision.MATCH

    def test_normalizer_applied_in_rule(self):
        matcher = RecordMatcher(
            [FieldRule("name", normalizer=normalize_name)], match_threshold=0.99
        )
        a = Record({"name": "Smith, John"})
        b = Record({"name": "john smith"})
        assert matcher.decide(a, b) is MatchDecision.MATCH

    def test_empty_rules_rejected(self):
        with pytest.raises(CleaningError):
            RecordMatcher([])

    def test_bad_thresholds_rejected(self):
        with pytest.raises(CleaningError):
            self.matcher(match_threshold=0.5, possible_threshold=0.8)

    def test_all_fields_missing_scores_zero(self):
        matcher = self.matcher()
        assert matcher.score(Record({}), Record({})).score == 0.0

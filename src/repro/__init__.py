"""repro: a reproduction of the Nimble XML data integration system.

Draper, Halevy, Weld — "The Nimble XML Data Integration System",
ICDE 2001.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced experiments.

Quickstart::

    from repro import (
        Catalog, NimbleEngine, RelationalSource, SourceRegistry, SimClock,
    )

    registry = SourceRegistry()
    registry.register(RelationalSource("crm", crm_database))
    catalog = Catalog(registry)
    catalog.map_relation("customers", "crm", "customers")
    engine = NimbleEngine(catalog)
    result = engine.query('''
        WHERE <c><name>$n</name><city>$city</city></c> IN "customers",
              $city = "Seattle"
        CONSTRUCT <customer><name>$n</name></customer>
    ''')
"""

from repro.cache import FragmentResultCache, StatisticsFeedback
from repro.core import (
    AccessController,
    Completeness,
    EngineCluster,
    Lens,
    LensServer,
    NimbleEngine,
    PartialResultPolicy,
    QueryResult,
    ShardRouter,
    User,
    format_result,
)
from repro.materialize import MaterializationManager, RefreshPolicy
from repro.mediator import Catalog, MediatedSchema, RelationMapping, ViewDef
from repro.observability import (
    AlertManager,
    AlertRule,
    FragmentOrigin,
    MetricsRegistry,
    Provenance,
    QueryLog,
    RegressionDetector,
    SloPolicy,
    SloTracker,
    Tracer,
    default_rules,
    explain_provenance,
    format_trace,
    merge_registries,
    prometheus_exposition,
    write_slo_report,
)
from repro.errors import OverloadError, QueryRejected
from repro.optimizer import CostModel
from repro.resilience import (
    AdmissionController,
    BreakerConfig,
    BrownoutLevel,
    CircuitBreaker,
    FallbackRegistry,
    FaultModel,
    HedgePolicy,
    LoadShedder,
    Priority,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock, TaskGroup, Timeline
from repro.sources import (
    AvailabilityModel,
    FlakySource,
    HierarchicalSource,
    NetworkModel,
    RelationalSource,
    ShardMap,
    ShardedDeployment,
    SourceRegistry,
    WebServiceSource,
    XMLSource,
    partition_registry,
)
from repro.sql import Database
from repro.xmldm import Document, Element, Record, parse_document, serialize

__version__ = "1.0.0"

__all__ = [
    "AccessController",
    "AdmissionController",
    "AlertManager",
    "AlertRule",
    "AvailabilityModel",
    "BreakerConfig",
    "BrownoutLevel",
    "Catalog",
    "CircuitBreaker",
    "Completeness",
    "CostModel",
    "Database",
    "Document",
    "Element",
    "EngineCluster",
    "FallbackRegistry",
    "FaultModel",
    "FlakySource",
    "FragmentOrigin",
    "FragmentResultCache",
    "HedgePolicy",
    "HierarchicalSource",
    "Lens",
    "LensServer",
    "LoadShedder",
    "MaterializationManager",
    "MediatedSchema",
    "MetricsRegistry",
    "NetworkModel",
    "NimbleEngine",
    "OverloadError",
    "PartialResultPolicy",
    "Priority",
    "Provenance",
    "QueryLog",
    "QueryRejected",
    "QueryResult",
    "Record",
    "RefreshPolicy",
    "RegressionDetector",
    "RelationMapping",
    "RelationalSource",
    "ResiliencePolicy",
    "RetryPolicy",
    "ShardMap",
    "ShardRouter",
    "ShardedDeployment",
    "SimClock",
    "SloPolicy",
    "SloTracker",
    "SourceRegistry",
    "StatisticsFeedback",
    "Tracer",
    "User",
    "ViewDef",
    "WebServiceSource",
    "XMLSource",
    "__version__",
    "default_rules",
    "explain_provenance",
    "format_result",
    "format_trace",
    "merge_registries",
    "parse_document",
    "partition_registry",
    "prometheus_exposition",
    "serialize",
    "write_slo_report",
]

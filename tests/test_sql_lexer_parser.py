"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_expression, parse_script, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert tokens[0].value == "SELECT"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "1e3"]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD", "NUMBER"]

    def test_quoted_identifier(self):
        tokens = tokenize('"order"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "order"

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("<> <= >= != ||")[:-1]]
        assert values == ["<>", "<=", ">=", "!=", "||"]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'open")

    def test_bad_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT ^")


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.table.name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "z"

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_cross_join_comma(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert stmt.joins[0].kind == "CROSS"
        assert stmt.joins[0].condition is None

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_where_parsed(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "AND"


class TestOtherStatements:
    def test_insert_full(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.InsertStmt)
        assert len(stmt.rows) == 2
        assert stmt.columns == ()

    def test_insert_named_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(stmt, ast.UpdateStmt)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, ast.DeleteStmt)

    def test_create_table_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(40) NOT NULL,"
            " age INT)"
        )
        assert stmt.columns[0].primary_key
        assert not stmt.columns[1].nullable
        assert stmt.columns[2].nullable

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX ix ON t (a)")
        assert isinstance(stmt, ast.CreateIndexStmt)
        assert (stmt.name, stmt.table, stmt.column) == ("ix", "t", "a")

    def test_drop_table(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTableStmt)

    def test_script(self):
        statements = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);")
        assert len(statements) == 2


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_boolean(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        assert expr.negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, ast.Like)

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, ast.IsNull)
        assert expr.negated

    def test_function_call_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_count_star(self):
        assert parse_expression("COUNT(*)").star

    def test_params(self):
        expr = parse_expression("a = ? AND b = ?")
        assert expr.left.right.index == 0
        assert expr.right.right.index == 1

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.UnaryOp)

    @pytest.mark.parametrize(
        "text", ["SELECT", "SELECT FROM t", "INSERT t", "SELECT a FROM t WHERE",
                 "UPDATE t SET", "CREATE TABLE t ()"]
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SQLSyntaxError):
            parse_statement(text)

"""Normalization functions: the extensible standardization layer.

"The framework is extensible, handling immediate needs (e.g., name and
address standardization) and allowing for future enhancements ...
Domain-specific and customer-provided normalization and matching
functions are supported" (section 3.2).  Built-ins cover the immediate
needs; :class:`NormalizerRegistry` is the extension point.
"""

from __future__ import annotations

import re
from typing import Callable

from repro.errors import CleaningError
from repro.xmldm.values import Null

Normalizer = Callable[[str], str]

_STREET_ABBREVIATIONS = {
    "st": "street",
    "st.": "street",
    "str": "street",
    "ave": "avenue",
    "ave.": "avenue",
    "av": "avenue",
    "blvd": "boulevard",
    "blvd.": "boulevard",
    "rd": "road",
    "rd.": "road",
    "dr": "drive",
    "dr.": "drive",
    "ln": "lane",
    "ln.": "lane",
    "ct": "court",
    "ct.": "court",
    "hwy": "highway",
    "pkwy": "parkway",
    "apt": "apartment",
    "apt.": "apartment",
    "ste": "suite",
    "ste.": "suite",
    "n": "north",
    "n.": "north",
    "s": "south",
    "s.": "south",
    "e": "east",
    "e.": "east",
    "w": "west",
    "w.": "west",
}

_NAME_TITLES = {"mr", "mr.", "mrs", "mrs.", "ms", "ms.", "dr", "dr.", "prof",
                "prof.", "sir", "jr", "jr.", "sr", "sr.", "ii", "iii", "iv"}


def normalize_whitespace(value: str) -> str:
    """Collapse runs of whitespace and trim."""
    return " ".join(value.split())


def normalize_case(value: str) -> str:
    """Lower-case after whitespace normalization."""
    return normalize_whitespace(value).lower()


def strip_punctuation(value: str) -> str:
    """Remove punctuation except intra-word hyphens/apostrophes."""
    cleaned = re.sub(r"[^\w\s'\-]", " ", value)
    return normalize_whitespace(cleaned)


def normalize_name(value: str) -> str:
    """Person-name standardization: case, titles, 'Last, First' order."""
    text = normalize_case(value)
    if "," in text:
        last, _, first = text.partition(",")
        text = f"{first.strip()} {last.strip()}"
    text = strip_punctuation(text)
    tokens = [token for token in text.split() if token not in _NAME_TITLES]
    return " ".join(tokens)


def normalize_street(value: str) -> str:
    """Street standardization: case, punctuation, abbreviation expansion."""
    text = strip_punctuation(normalize_case(value))
    tokens = [_STREET_ABBREVIATIONS.get(token, token) for token in text.split()]
    return " ".join(tokens)


def normalize_city(value: str) -> str:
    """City standardization: case and punctuation only."""
    return strip_punctuation(normalize_case(value))


def normalize_phone(value: str) -> str:
    """Keep digits only; drop a leading country '1' on 11-digit numbers."""
    digits = re.sub(r"\D", "", value)
    if len(digits) == 11 and digits.startswith("1"):
        digits = digits[1:]
    return digits


def normalize_email(value: str) -> str:
    """Lower-case; strip '+tag' suffixes in the local part."""
    text = normalize_case(value)
    if "@" not in text:
        return text
    local, _, domain = text.partition("@")
    local = local.partition("+")[0]
    return f"{local}@{domain}"


class NormalizerRegistry:
    """The extension point: named normalizers, built-ins preloaded."""

    def __init__(self) -> None:
        self._normalizers: dict[str, Normalizer] = {
            "whitespace": normalize_whitespace,
            "case": normalize_case,
            "punctuation": strip_punctuation,
            "name": normalize_name,
            "street": normalize_street,
            "city": normalize_city,
            "phone": normalize_phone,
            "email": normalize_email,
        }

    def register(self, name: str, normalizer: Normalizer) -> None:
        """Add a customer-provided normalizer (overriding is an error)."""
        if name in self._normalizers:
            raise CleaningError(f"normalizer {name!r} already registered")
        self._normalizers[name] = normalizer

    def get(self, name: str) -> Normalizer:
        normalizer = self._normalizers.get(name)
        if normalizer is None:
            raise CleaningError(
                f"unknown normalizer {name!r} (have {sorted(self._normalizers)})"
            )
        return normalizer

    def chain(self, *names: str) -> Normalizer:
        """Compose normalizers left to right."""
        normalizers = [self.get(name) for name in names]

        def composed(value: str) -> str:
            for normalizer in normalizers:
                value = normalizer(value)
            return value

        return composed

    def apply(self, name: str, value) -> str:
        """Apply by name; NULL and None pass through as empty string."""
        if value is None or isinstance(value, Null):
            return ""
        return self.get(name)(str(value))

    def names(self) -> list[str]:
        return sorted(self._normalizers)

"""Candidate-pair generation: naive all-pairs vs sorted neighborhood.

The merge/purge problem (Hernandez & Stolfo, cited by the paper as
[10, 11]): comparing every pair is O(n²); the sorted-neighborhood
method sorts by a blocking key and compares only records within a
sliding window, trading a little recall for near-linear cost.
Multi-pass SNM recovers recall by unioning windows over several keys.
Benchmark E3 measures exactly this trade.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import CleaningError
from repro.xmldm.values import Record

KeyFn = Callable[[Record], str]
Pair = tuple[int, int]  # indexes into the record list, i < j


def naive_pairs(records: Sequence[Record]) -> Iterator[Pair]:
    """Every unordered pair: the O(n²) baseline."""
    n = len(records)
    for i in range(n):
        for j in range(i + 1, n):
            yield (i, j)


def sorted_neighborhood(
    records: Sequence[Record], key: KeyFn, window: int = 5
) -> Iterator[Pair]:
    """Hernandez-Stolfo sorted neighborhood: sort by key, slide a window.

    Yields each candidate pair once (i < j in original index order).
    ``window`` is the neighbourhood size: each record is compared with
    the ``window - 1`` records that follow it in key order.
    """
    if window < 2:
        raise CleaningError("window must be at least 2")
    order = sorted(range(len(records)), key=lambda i: key(records[i]))
    for position, i in enumerate(order):
        for offset in range(1, window):
            neighbor = position + offset
            if neighbor >= len(order):
                break
            j = order[neighbor]
            yield (i, j) if i < j else (j, i)


def multi_pass_neighborhood(
    records: Sequence[Record], keys: Iterable[KeyFn], window: int = 5
) -> Iterator[Pair]:
    """Union of sorted-neighborhood passes over several blocking keys.

    A single bad key (e.g. a typo in its first character) hides true
    matches; independent keys make misses uncorrelated.  Pairs are
    deduplicated across passes.
    """
    seen: set[Pair] = set()
    for key in keys:
        for pair in sorted_neighborhood(records, key, window):
            if pair not in seen:
                seen.add(pair)
                yield pair


def first_letters_key(field: str, letters: int = 16) -> KeyFn:
    """Blocking key: the first ``letters`` characters of a field."""

    def key(record: Record) -> str:
        value = record.get(field)
        return str(value)[:letters].lower() if value else ""

    return key


def reversed_field_key(field: str, letters: int = 16) -> KeyFn:
    """Blocking key: the first characters of the *reversed* field.

    Complements :func:`first_letters_key` in multi-pass SNM — typos at
    the start of a string do not perturb it.
    """

    def key(record: Record) -> str:
        value = record.get(field)
        return str(value)[::-1][:letters].lower() if value else ""

    return key

"""Trace exporters: JSON dumps and Chrome ``trace_event`` format.

The Chrome format (load via ``chrome://tracing`` or https://ui.perfetto.dev)
makes a prefetch wave's fan-out visually inspectable: fetches that
overlapped in virtual time render as parallel lanes.  Lanes (``tid``)
are assigned deterministically — every child of a ``wave`` span gets
its own lane, inherited by its descendants; everything else runs on
lane 0.  Timestamps are the spans' *virtual* microseconds, so the
picture shows the modelled concurrency, not Python's (serial) wall
clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.observability.tracing import Span

#: span kinds that belong to the maintenance lane: CDC draining,
#: incremental view refresh, and the XML snapshot differ
MAINTENANCE_KINDS = frozenset(
    {"cdc_sync", "cdc_feed", "maintenance", "view_refresh", "snapshot_diff"}
)

#: the dedicated ``tid`` maintenance work renders on — far above any
#: wave lane so background upkeep never interleaves with query fan-out
MAINTENANCE_TID = 999


def trace_to_dict(trace: Span) -> dict[str, Any]:
    """One trace as a plain nested dict."""
    return trace.to_dict()


def traces_to_json(traces: Iterable[Span], indent: int = 2) -> str:
    """JSON dump of several traces (newest last)."""
    return json.dumps(
        [trace_to_dict(trace) for trace in traces],
        indent=indent, sort_keys=True,
    )


def chrome_trace_events(traces: Iterable[Span]) -> dict[str, Any]:
    """Traces as a Chrome ``trace_event`` JSON object.

    Every span becomes a complete event (``"ph": "X"``) and every span
    event an instant event (``"ph": "i"``).  ``pid`` is the trace's
    ordinal so several queries stack in one view; ``tid`` is the lane.
    """
    events: list[dict[str, Any]] = []
    for pid, trace in enumerate(traces):
        before = len(events)
        _emit(trace, pid, tid=0, events=events)
        if any(event["tid"] == MAINTENANCE_TID
               for event in events[before:]):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": MAINTENANCE_TID,
                "args": {"name": "maintenance"},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _emit(span: Span, pid: int, tid: int, events: list[dict[str, Any]]) -> None:
    if span.kind in MAINTENANCE_KINDS:
        tid = MAINTENANCE_TID
    events.append({
        "name": f"{span.kind}:{span.name}" if span.name else span.kind,
        "cat": span.kind,
        "ph": "X",
        "ts": round(span.start_virtual_ms * 1000.0, 3),
        "dur": round(span.virtual_ms * 1000.0, 3),
        "pid": pid,
        "tid": tid,
        "args": _jsonable_attrs(span.attrs),
    })
    for event in span.events:
        events.append({
            "name": event.name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": round(event.at_virtual_ms * 1000.0, 3),
            "pid": pid,
            "tid": tid,
            "args": _jsonable_attrs(event.attrs),
        })
    fan_out = span.kind == "wave"
    for index, child in enumerate(span.children):
        # each member of a wave gets its own lane so overlap is visible
        _emit(child, pid, tid=index + 1 if fan_out else tid, events=events)


def _jsonable_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value if isinstance(value, (str, int, float, bool)) or value is None
        else str(value)
        for key, value in attrs.items()
    }


def write_chrome_trace(path: str | Path, traces: Iterable[Span]) -> Path:
    """Write a Chrome trace JSON file; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace_events(traces), indent=2) + "\n")
    return path

"""Recursive-descent parser for the XML-QL dialect."""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.query import ast
from repro.query.lexer import Token, tokenize


def parse_query(text: str) -> ast.Query:
    """Parse a WHERE ... CONSTRUCT ... [ORDER BY ...] query."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect_eof()
    return query


def parse_pattern(text: str) -> ast.PatternElement:
    """Parse a standalone element pattern (used by tests and mappings)."""
    parser = _Parser(tokenize(text))
    pattern = parser.parse_pattern_element()
    parser.expect_eof()
    return pattern


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> QuerySyntaxError:
        token = self.peek()
        shown = token.value or token.kind
        return QuerySyntaxError(f"{message}, found {shown!r}", token.line, token.column)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            raise self.error(f"expected {value or kind}")
        return token

    def expect_eof(self) -> None:
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing input")

    # -- query -----------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self.expect("KEYWORD", "WHERE")
        clauses = [self._parse_clause()]
        while self.accept("PUNCT", ","):
            clauses.append(self._parse_clause())
        self.expect("KEYWORD", "CONSTRUCT")
        construct = self.parse_template_element()
        order_by: list[ast.OrderSpec] = []
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            order_by.append(self._parse_order_spec())
            while self.accept("PUNCT", ","):
                order_by.append(self._parse_order_spec())
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            token = self.peek()
            if token.kind != "NUMBER" or "." in token.value:
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = int(token.value)
        return ast.Query(tuple(clauses), construct, tuple(order_by), limit)

    def _parse_order_spec(self) -> ast.OrderSpec:
        expr = self.parse_expr()
        descending = False
        if self.accept("KEYWORD", "DESC"):
            descending = True
        else:
            self.accept("KEYWORD", "ASC")
        return ast.OrderSpec(expr, descending)

    def _parse_clause(self) -> ast.Clause:
        if self.peek().kind in ("TAGOPEN", "TAGDESC"):
            pattern = self.parse_pattern_element()
            self.expect("KEYWORD", "IN")
            token = self.peek()
            if token.kind == "STRING" or token.kind == "IDENT":
                self.advance()
                return ast.PatternClause(pattern, token.value)
            raise self.error("expected a source name after IN")
        return ast.ConditionClause(self.parse_expr())

    # -- patterns ----------------------------------------------------------------

    def parse_pattern_element(self) -> ast.PatternElement:
        descendant = False
        if self.accept("TAGDESC"):
            descendant = True
        else:
            self.expect("TAGOPEN")
        tag = self._parse_tag_name()
        attributes = self._parse_attr_matches()
        if self.accept("SELFCLOSE"):
            return self._with_element_as(
                ast.PatternElement(tag, tuple(attributes),
                                   descendant=descendant)
            )
        self.expect("GT")
        children: list[ast.PatternElement] = []
        text_var: str | None = None
        text_literal: str | None = None
        while True:
            token = self.peek()
            if token.kind == "TAGCLOSE":
                self.advance()
                if self.peek().kind in ("IDENT", "KEYWORD"):
                    token = self.advance()
                    closing = token.original or token.value
                    if closing != tag:
                        raise self.error(
                            f"mismatched closing tag </{closing}> for <{tag}>"
                        )
                self.expect("GT")
                break
            if token.kind in ("TAGOPEN", "TAGDESC"):
                children.append(self.parse_pattern_element())
                continue
            if token.kind == "VAR":
                if text_var is not None:
                    raise self.error(f"element <{tag}> binds text twice")
                text_var = self.advance().value
                continue
            if token.kind == "STRING":
                text_literal = self.advance().value
                continue
            if token.kind in ("IDENT", "NUMBER"):
                # Bare words/numbers act as literal text content.
                text_literal = self.advance().value
                continue
            raise self.error(f"unexpected content in pattern <{tag}>")
        element = ast.PatternElement(
            tag, tuple(attributes), tuple(children), text_var, text_literal,
            descendant=descendant,
        )
        return self._with_element_as(element)

    def _with_element_as(self, element: ast.PatternElement) -> ast.PatternElement:
        if self.accept("KEYWORD", "ELEMENT_AS") or self.accept("KEYWORD", "CONTENT_AS"):
            var = self.expect("VAR").value
            return ast.PatternElement(
                element.tag,
                element.attributes,
                element.children,
                element.text_var,
                element.text_literal,
                element_var=var,
                descendant=element.descendant,
            )
        return element

    def _parse_tag_name(self) -> str:
        token = self.peek()
        if token.kind in ("IDENT", "KEYWORD"):
            self.advance()
            return token.original or token.value
        if token.kind == "PUNCT" and token.value == "*":
            self.advance()
            return "*"
        raise self.error("expected a tag name")

    def _parse_attr_matches(self) -> list[ast.AttrMatch]:
        attributes: list[ast.AttrMatch] = []
        while self.peek().kind == "IDENT":
            name = self.advance().value
            self.expect("OP", "=")
            token = self.peek()
            if token.kind == "VAR":
                self.advance()
                attributes.append(ast.AttrMatch(name, var=token.value))
            elif token.kind == "STRING":
                self.advance()
                attributes.append(ast.AttrMatch(name, literal=token.value))
            else:
                raise self.error("attribute pattern needs $var or a string")
        return attributes

    # -- templates ---------------------------------------------------------------

    def parse_template_element(self) -> ast.TemplateElement:
        self.expect("TAGOPEN")
        tag = self._parse_tag_name()
        attributes: list[tuple[str, str | ast.Var]] = []
        while self.peek().kind == "IDENT":
            name = self.advance().value
            self.expect("OP", "=")
            token = self.peek()
            if token.kind == "VAR":
                self.advance()
                attributes.append((name, ast.Var(token.value)))
            elif token.kind == "STRING":
                self.advance()
                attributes.append((name, token.value))
            else:
                raise self.error("template attribute needs $var or a string")
        if self.accept("SELFCLOSE"):
            return ast.TemplateElement(tag, tuple(attributes))
        self.expect("GT")
        children: list[ast.TemplateElement | ast.Var | str] = []
        while True:
            token = self.peek()
            if token.kind == "TAGCLOSE":
                self.advance()
                if self.peek().kind in ("IDENT", "KEYWORD"):
                    token = self.advance()
                    closing = token.original or token.value
                    if closing != tag:
                        raise self.error(
                            f"mismatched closing tag </{closing}> for <{tag}>"
                        )
                self.expect("GT")
                break
            if token.kind == "TAGOPEN":
                children.append(self.parse_template_element())
                continue
            if token.kind == "VAR":
                children.append(ast.Var(self.advance().value))
                continue
            if token.kind == "IDENT" and (
                self.peek(1).kind == "PUNCT" and self.peek(1).value == "("
            ):
                name = self.advance().value.lower()
                if name not in ast.AGGREGATE_KINDS:
                    raise self.error(f"unknown aggregate {name!r}")
                self.expect("PUNCT", "(")
                var = self.expect("VAR").value
                self.expect("PUNCT", ")")
                children.append(ast.AggregateRef(name, var))
                continue
            if token.kind in ("STRING", "IDENT", "NUMBER"):
                children.append(self.advance().value)
                continue
            raise self.error(f"unexpected content in template <{tag}>")
        return ast.TemplateElement(tag, tuple(attributes), tuple(children))

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.accept("KEYWORD", "OR"):
            left = ast.BinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.accept("KEYWORD", "AND"):
            left = ast.BinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.accept("KEYWORD", "NOT"):
            return ast.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            op = "!=" if token.value == "<>" else token.value
            return ast.BinOp(op, left, self._parse_additive())
        if token.kind == "GT":
            self.advance()
            return ast.BinOp(">", left, self._parse_additive())
        if token.kind == "KEYWORD" and token.value == "LIKE":
            self.advance()
            return ast.BinOp("LIKE", left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                self.advance()
                left = ast.BinOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_primary()
        while True:
            token = self.peek()
            if token.kind == "OP" and token.value in ("*", "/", "%"):
                self.advance()
                left = ast.BinOp(token.value, left, self._parse_primary())
            elif token.kind == "PUNCT" and token.value == "*":
                self.advance()
                left = ast.BinOp("*", left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "VAR":
            self.advance()
            return ast.Var(token.value)
        if token.kind == "NUMBER":
            self.advance()
            if "." in token.value:
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "PUNCT" and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("PUNCT", ")")
            return expr
        if token.kind == "IDENT":
            name = self.advance().value
            if self.accept("PUNCT", "("):
                args: list[ast.Expr] = []
                if not (self.peek().kind == "PUNCT" and self.peek().value == ")"):
                    args.append(self.parse_expr())
                    while self.accept("PUNCT", ","):
                        args.append(self.parse_expr())
                self.expect("PUNCT", ")")
                return ast.Call(name.lower(), tuple(args))
            if name.lower() in ("true", "false"):
                return ast.Literal(name.lower() == "true")
            raise self.error(f"unknown identifier {name!r} in expression")
        raise self.error("expected an expression")

"""Change data capture and incremental view maintenance.

The load-bearing claim is the property test at the bottom: under random
insert/update/delete streams, a delta-maintained view's elements are
**bit-identical** to a full re-materialization of the same query —
across fragment caching on/off, injected faults on/off, and compared
against a sharded scatter-gather execution as well as the coordinator.
"""

from __future__ import annotations

import pytest

from repro.admin import FreshnessMonitor, ManagementConsole
from repro.algebra.tuples import BindingTuple
from repro.cdc import (
    ChangeLog,
    ChangeRecord,
    DeltaDistinct,
    DeltaGroups,
    DeltaJoin,
    DeltaSelect,
    DeltaUnsupported,
    RowDelta,
    diff_documents,
    fragment_patch,
    key_affected,
    patch_records,
)
from repro.core.engine import NimbleEngine, PartialResultPolicy
from repro.core.sharding import ShardRouter
from repro.materialize import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.mediator.schema import MediatedSchema, ViewDef
from repro.query import ast as qast
from repro.query.exprs import compile_predicate
from repro.query.parser import parse_query
from repro.query.translate import template_to_construct
from repro.resilience import FaultModel, ResiliencePolicy, RetryPolicy
from repro.simtime import SimClock
from repro.sources.base import NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.sharding import partition_registry
from repro.sources.xmlfile import XMLSource
from repro.sql.database import Database
from repro.xmldm.parser import parse_document
from repro.xmldm.serializer import serialize

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


# -- deployment builders ------------------------------------------------------


def seeded_rows(n: int, seed: int = 7) -> list[tuple[int, int, int]]:
    return [(k, (k * seed) % 5, (k * k * seed) % 23) for k in range(n)]


def build_deployment(rows, faults=None, **engine_kw):
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    clock = SimClock()
    registry = SourceRegistry(clock)
    source = RelationalSource(
        "s", db, network=NetworkModel(latency_ms=20.0, per_row_ms=0.5)
    )
    if faults is not None:
        source.faults = faults
    registry.register(source)
    source.enable_cdc()
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    schema = MediatedSchema("m")
    schema.define(ViewDef.from_text(
        "big_items",
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items", $v > 5 '
        "CONSTRUCT <r><k>$k</k><v>$v</v></r>",
    ))
    schema.define(ViewDef.from_text(
        "by_group",
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        "CONSTRUCT <g id=$g><n>count($v)</n><total>sum($v)</total>"
        "<mean>avg($v)</mean></g>",
    ))
    schema.define(ViewDef.from_text(
        "group_extremes",
        'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
        "CONSTRUCT <g id=$g><lo>min($v)</lo><hi>max($v)</hi></g>",
    ))
    catalog.add_schema(schema)
    manager = MaterializationManager(clock)
    engine = NimbleEngine(
        catalog, materializer=manager, incremental=True, **engine_kw
    )
    return engine, source


def fresh_elements(engine, name):
    """Full re-execution of a view's query, bypassing materialization."""
    resolved = engine.catalog.resolve(name)
    result = engine._execute(
        resolved.query, PartialResultPolicy.FAIL, frozenset()
    )
    return [serialize(element) for element in result.elements]


def maintained_elements(engine, name):
    return [serialize(element) for element in engine.incremental.views[name].elements]


def _retrying() -> ResiliencePolicy:
    return ResiliencePolicy(retry=RetryPolicy(max_attempts=8), breaker=None)


# -- changelog ----------------------------------------------------------------


class TestChangeLog:
    def test_sequences_are_dense_from_one(self):
        log = ChangeLog("s", SimClock())
        log.emit("insert", "t", key=1)
        log.emit("delete", "t", key=1)
        assert [record.seq for record in log.since(0)] == [1, 2]
        assert log.latest_seq == 2

    def test_since_slices_by_sequence(self):
        log = ChangeLog("s", SimClock())
        for key in range(5):
            log.emit("insert", "t", key=key)
        assert [record.key for record in log.since(3)] == [3, 4]
        assert log.since(5) == []
        assert len(log.since(0)) == 5

    def test_declared_keys(self):
        log = ChangeLog("s", SimClock())
        log.declare_key("t", "id")
        assert log.key_field("t") == "id"
        assert log.key_field("u") is None

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            ChangeRecord(1, "upsert", "s", "t")

    def test_reset_record(self):
        log = ChangeLog("s", SimClock())
        log.emit_reset("t")
        assert log.since(0)[0].op == "reset"

    def test_timestamps_from_clock(self):
        clock = SimClock()
        log = ChangeLog("s", clock)
        clock.advance(125.0)
        log.emit("insert", "t", key=1)
        assert log.since(0)[0].at_ms == 125.0


# -- subtree hashes -----------------------------------------------------------


class TestSubtreeHash:
    DOC = "<r><a id='1'><x>1</x></a><a id='2'><x>2</x></a></r>"

    def test_equal_documents_equal_hashes(self):
        one = parse_document(self.DOC).root
        two = parse_document(self.DOC).root
        assert one.subtree_hash() == two.subtree_hash()

    def test_hash_is_memoized(self):
        root = parse_document(self.DOC).root
        root.subtree_hash()
        assert root._subtree_hash is not None

    def test_append_invalidates_ancestors(self):
        root = parse_document(self.DOC).root
        before = root.subtree_hash()
        child = parse_document("<a id='3'><x>3</x></a>").root
        root.append(child)
        assert root._subtree_hash is None
        assert root.subtree_hash() != before

    def test_text_mutation_invalidates_up_the_chain(self):
        root = parse_document(self.DOC).root
        before = root.subtree_hash()
        text = list(root.child_elements())[0].first_child("x").children[0]
        text.set_value("9")
        assert root.subtree_hash() != before

    def test_attribute_mutation_changes_hash(self):
        root = parse_document(self.DOC).root
        before = root.subtree_hash()
        list(root.child_elements())[0].set_attribute("id", "7")
        assert root.subtree_hash() != before

    def test_noop_attribute_set_keeps_cache(self):
        root = parse_document(self.DOC).root
        root.subtree_hash()
        list(root.child_elements())[0].set_attribute("id", "1")  # unchanged
        assert root._subtree_hash is not None


# -- document differ ----------------------------------------------------------


def _rows_doc(rows):
    body = "".join(
        f"<row><id>{k}</id><v>{v}</v></row>" for k, v in rows
    )
    return parse_document(f"<t>{body}</t>").root


class TestDiffer:
    def test_identical_documents_no_changes(self):
        assert diff_documents(_rows_doc([(1, "a")]), _rows_doc([(1, "a")]),
                              "id") == []

    def test_update_detected(self):
        changes = diff_documents(
            _rows_doc([(1, "a"), (2, "b")]),
            _rows_doc([(1, "a"), (2, "B")]), "id",
        )
        assert [(c.op, c.key) for c in changes] == [("update", "2")]

    def test_append_is_insert(self):
        changes = diff_documents(
            _rows_doc([(1, "a")]), _rows_doc([(1, "a"), (2, "b")]), "id"
        )
        assert [(c.op, c.key) for c in changes] == [("insert", "2")]

    def test_delete_detected(self):
        changes = diff_documents(
            _rows_doc([(1, "a"), (2, "b")]), _rows_doc([(2, "b")]), "id"
        )
        assert [(c.op, c.key) for c in changes] == [("delete", "1")]

    def test_mid_document_insert_is_reset(self):
        changes = diff_documents(
            _rows_doc([(1, "a"), (3, "c")]),
            _rows_doc([(1, "a"), (2, "b"), (3, "c")]), "id",
        )
        assert [c.op for c in changes] == ["reset"]

    def test_reorder_is_reset(self):
        changes = diff_documents(
            _rows_doc([(1, "a"), (2, "b")]),
            _rows_doc([(2, "b"), (1, "a")]), "id",
        )
        assert [c.op for c in changes] == ["reset"]

    def test_duplicate_keys_reset(self):
        changes = diff_documents(
            _rows_doc([(1, "a")]), _rows_doc([(1, "a"), (1, "b")]), "id"
        )
        assert [c.op for c in changes] == ["reset"]

    def test_root_tag_change_reset(self):
        new = parse_document("<u><row><id>1</id></row></u>").root
        changes = diff_documents(_rows_doc([(1, "a")]), new, "id")
        assert [c.op for c in changes] == ["reset"]


# -- delta operators ----------------------------------------------------------


def _row(**kw):
    return BindingTuple(kw)


class TestDeltaOperators:
    def test_select_flips(self):
        predicate = compile_predicate(
            qast.BinOp(">", qast.Var("v"), qast.Literal(5))
        )
        select = DeltaSelect(predicate)
        flip_in = select.apply_delta(
            [RowDelta("update", row=_row(v=9), before=_row(v=1))]
        )
        assert [d.op for d in flip_in] == ["insert"]
        flip_out = select.apply_delta(
            [RowDelta("update", row=_row(v=1), before=_row(v=9))]
        )
        assert [d.op for d in flip_out] == ["delete"]
        dropped = select.apply_delta(
            [RowDelta("insert", row=_row(v=1))]
        )
        assert dropped == []

    def test_distinct_retraction_with_survivors_unsupported(self):
        distinct = DeltaDistinct()
        distinct.observe(_row(a=1))
        distinct.observe(_row(a=1))
        with pytest.raises(DeltaUnsupported):
            # one duplicate survives: emitting a delete would be wrong,
            # emitting nothing leaves the count wrong — punt to rebuild
            distinct.apply_delta([RowDelta("delete", before=_row(a=1))])

    def test_distinct_last_copy_deletes(self):
        distinct = DeltaDistinct()
        distinct.observe(_row(a=1))
        out = distinct.apply_delta([RowDelta("delete", before=_row(a=1))])
        assert [d.op for d in out] == ["delete"]

    def test_join_pairs_updates(self):
        join = DeltaJoin([_row(k=1, extra="x")], ("k",))
        out = join.apply_delta([RowDelta("insert", row=_row(k=1, v=2))])
        assert out[0].row.get("extra") == "x"

    def test_groups_count_sum_avg_exact(self):
        template = template_to_construct(parse_query(
            'WHERE <i><g>$g</g><v>$v</v></i> IN "x" '
            "CONSTRUCT <r id=$g><n>count($v)</n><s>sum($v)</s>"
            "<m>avg($v)</m></r>"
        ).construct)
        groups = DeltaGroups(template)
        base = [_row(g=1, v=10), _row(g=1, v=20), _row(g=2, v=5)]
        for row in base:
            groups.observe(row)
        groups.apply_delta([
            RowDelta("update", row=_row(g=1, v=30), before=_row(g=1, v=10)),
            RowDelta("delete", before=_row(g=2, v=5)),
            RowDelta("insert", row=_row(g=2, v=7)),
        ])
        maintained = [serialize(e) for e in groups.finalize(
            [_row(g=1, v=30), _row(g=1, v=20), _row(g=2, v=7)]
        )]
        recomputed = DeltaGroups(template)
        final = [_row(g=1, v=30), _row(g=1, v=20), _row(g=2, v=7)]
        for row in final:
            recomputed.observe(row)
        assert maintained == [serialize(e) for e in recomputed.finalize(final)]

    def test_min_retraction_of_extreme_unsupported(self):
        template = template_to_construct(parse_query(
            'WHERE <i><g>$g</g><v>$v</v></i> IN "x" '
            "CONSTRUCT <r id=$g><lo>min($v)</lo></r>"
        ).construct)
        groups = DeltaGroups(template)
        groups.observe(_row(g=1, v=3))
        groups.observe(_row(g=1, v=8))
        with pytest.raises(DeltaUnsupported):
            groups.apply_delta([RowDelta("delete", before=_row(g=1, v=3))])

    def test_min_retraction_of_non_extreme_fine(self):
        template = template_to_construct(parse_query(
            'WHERE <i><g>$g</g><v>$v</v></i> IN "x" '
            "CONSTRUCT <r id=$g><lo>min($v)</lo></r>"
        ).construct)
        groups = DeltaGroups(template)
        groups.observe(_row(g=1, v=3))
        groups.observe(_row(g=1, v=8))
        groups.apply_delta([RowDelta("delete", before=_row(g=1, v=8))])
        out = groups.finalize([_row(g=1, v=3)])
        assert serialize(out[0]) == '<r id="1"><lo>3</lo></r>'


# -- change scoping -----------------------------------------------------------


def _condition(op, var, value):
    return qast.BinOp(op, qast.Var(var), qast.Literal(value))


class TestScope:
    def test_key_affected_range_exclusion(self):
        conditions = [_condition("<", "k", 10)]
        assert not key_affected(conditions, "k", 15)
        assert key_affected(conditions, "k", 5)

    def test_key_affected_unordered_key_conservative(self):
        assert key_affected([_condition("<", "k", 10)], "k", True)

    def test_patch_records_insert_appends(self):
        from repro.cdc import FragmentPatch
        from repro.xmldm.values import Record

        records = [Record({"k": 1, "v": 2})]
        patch = FragmentPatch("insert", "k", 5, rows=(Record({"k": 5, "v": 9}),))
        assert patch_records(records, patch)[-1].get("k") == 5

    def test_patch_records_flip_in_unpatchable(self):
        from repro.cdc import FragmentPatch
        from repro.xmldm.values import Record

        records = [Record({"k": 1, "v": 2})]
        patch = FragmentPatch("update", "k", 5, rows=(Record({"k": 5, "v": 9}),))
        assert patch_records(records, patch) is None

    def test_patch_records_flip_out_deletes_in_place(self):
        from repro.cdc import FragmentPatch
        from repro.xmldm.values import Record

        records = [Record({"k": 1, "v": 2}), Record({"k": 5, "v": 3})]
        patch = FragmentPatch("update", "k", 5, rows=())
        patched = patch_records(records, patch)
        assert [record.get("k") for record in patched] == [1]


# -- scoped cache invalidation ------------------------------------------------


class TestScopedCacheInvalidation:
    LOW = ('WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k < 8 '
           "CONSTRUCT <r>$k</r>")
    HIGH = ('WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k > 12 '
            "CONSTRUCT <r>$k</r>")

    def test_disjoint_range_entry_retained(self):
        engine, source = build_deployment(
            seeded_rows(20), fragment_cache_bytes=1 << 20
        )
        engine.query(self.LOW)
        engine.query(self.HIGH)
        source.update_row("t", 2, {"v": 99})
        report = engine.sync_changes()
        # the $k > 12 entry provably excludes key 2: retained, not evicted
        assert report["cache_retained"] >= 1
        assert report["cache_evicted"] == 0
        # the retained entry still serves
        cached = engine.query(self.HIGH)
        assert cached.stats.cache_counters()["fragment_cache_hits"] == 1

    def test_epoch_is_not_bumped_by_data_changes(self):
        engine, source = build_deployment(seeded_rows(8))
        before = engine.catalog.version
        source.insert_row("t", {"k": 100, "grp": 0, "v": 1})
        engine.sync_changes()
        assert engine.catalog.version == before

    def test_patched_entry_serves_fresh_rows(self):
        engine, source = build_deployment(
            seeded_rows(10), fragment_cache_bytes=1 << 20
        )
        engine.query(self.LOW)
        source.update_row("t", 2, {"v": 77})
        report = engine.sync_changes()
        assert report["cache_patched"] >= 1
        result = engine.query(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k < 8, $k = 2 '
            "CONSTRUCT <r>$v</r>"
        )
        assert [e.text_content() for e in result.elements] == ["77"]

    def test_reset_evicts(self):
        engine, source = build_deployment(
            seeded_rows(10), fragment_cache_bytes=1 << 20
        )
        engine.query(self.LOW)
        source.changelog.emit_reset("t")
        report = engine.sync_changes()
        assert report["cache_evicted"] >= 1


# -- incremental maintenance (deterministic) ----------------------------------


class TestIncrementalMaintenance:
    def test_modes_classified(self):
        engine, _ = build_deployment(seeded_rows(10))
        assert engine.maintain_view("big_items").mode == "rows"
        assert engine.maintain_view("by_group").mode == "groups"

    def test_delta_refresh_bit_identical(self):
        engine, source = build_deployment(seeded_rows(12))
        for name in ("big_items", "by_group", "group_extremes"):
            engine.maintain_view(name)
        source.insert_row("t", {"k": 50, "grp": 1, "v": 9})
        source.delete_row("t", 3)
        source.update_row("t", 5, {"v": 21})
        engine.sync_changes()
        for name in ("big_items", "by_group", "group_extremes"):
            assert maintained_elements(engine, name) == fresh_elements(
                engine, name
            ), name

    def test_delta_path_actually_taken(self):
        engine, source = build_deployment(seeded_rows(12))
        engine.maintain_view("by_group")
        source.insert_row("t", {"k": 50, "grp": 1, "v": 9})
        report = engine.sync_changes()
        assert report["views"]["by_group"] == "delta"
        assert engine.cdc_stats.views_delta_refreshed == 1
        assert engine.cdc_stats.views_full_rebuilt == 0

    def test_flip_in_falls_back_to_rebuild(self):
        engine, source = build_deployment(seeded_rows(12))
        engine.maintain_view("big_items")
        low = next(  # a row currently outside the $v > 5 view
            k for (k, _, v) in seeded_rows(12) if v <= 5
        )
        source.update_row("t", low, {"v": 100})
        report = engine.sync_changes()
        assert report["views"]["big_items"] == "rebuild"
        assert maintained_elements(engine, "big_items") == fresh_elements(
            engine, "big_items"
        )

    def test_epoch_change_forces_rebuild(self):
        engine, source = build_deployment(seeded_rows(8))
        engine.maintain_view("big_items")
        engine.catalog.map_relation("extra", "s", "t")  # bumps the epoch
        source.insert_row("t", {"k": 60, "grp": 0, "v": 30})
        report = engine.sync_changes()
        assert report["views"]["big_items"] == "rebuild"
        assert maintained_elements(engine, "big_items") == fresh_elements(
            engine, "big_items"
        )

    def test_served_through_manager(self):
        engine, source = build_deployment(seeded_rows(10))
        engine.maintain_view("big_items")
        source.insert_row("t", {"k": 70, "grp": 2, "v": 8})
        engine.sync_changes()
        served = engine.materializer.serve_view("big_items")
        assert served is not None
        assert [serialize(e) for e in served] == fresh_elements(
            engine, "big_items"
        )

    def test_in_sync_refresh_is_noop(self):
        engine, _ = build_deployment(seeded_rows(8))
        engine.maintain_view("big_items")
        report = engine.sync_changes()
        assert report["views"] == {}
        assert report["changes"] == 0

    def test_xml_view_maintained_via_differ(self):
        clock = SimClock()
        registry = SourceRegistry(clock)
        xml = XMLSource(
            "x",
            {"rows": "<t><row><id>1</id><v>3</v></row>"
                     "<row><id>2</id><v>8</v></row></t>"},
            network=NetworkModel(latency_ms=10.0),
        )
        registry.register(xml)
        xml.enable_cdc({"rows": "id"})
        catalog = Catalog(registry)
        schema = MediatedSchema("m")
        schema.define(ViewDef.from_text(
            "all_rows",
            'WHERE <row><id>$i</id><v>$v</v></row> IN "x.rows" '
            "CONSTRUCT <o><i>$i</i><v>$v</v></o>",
        ))
        catalog.add_schema(schema)
        engine = NimbleEngine(
            catalog, materializer=MaterializationManager(clock),
            incremental=True,
        )
        view = engine.maintain_view("all_rows")
        assert view.mode == "rows"
        xml.replace_document(
            "rows",
            "<t><row><id>1</id><v>9</v></row>"
            "<row><id>2</id><v>8</v></row>"
            "<row><id>3</id><v>4</v></row></t>",
        )
        report = engine.sync_changes()
        assert report["views"]["all_rows"] == "delta"
        assert maintained_elements(engine, "all_rows") == fresh_elements(
            engine, "all_rows"
        )


# -- freshness monitoring -----------------------------------------------------


class TestFreshness:
    def test_lag_counts_pending_changes(self):
        engine, source = build_deployment(seeded_rows(8))
        engine.maintain_view("big_items")
        monitor = FreshnessMonitor(engine)
        assert monitor.snapshot()["views"]["big_items"]["seq_lag"] == 0
        engine.clock.advance(500.0)
        source.insert_row("t", {"k": 90, "grp": 0, "v": 9})
        engine.clock.advance(250.0)
        snapshot = monitor.snapshot()
        view = snapshot["views"]["big_items"]
        assert view["seq_lag"] == 1
        assert view["staleness_ms"] == 250.0
        engine.sync_changes()
        assert monitor.worst_staleness_ms() == 0.0

    def test_console_renders_freshness_section(self):
        engine, source = build_deployment(seeded_rows(8))
        engine.maintain_view("by_group")
        source.insert_row("t", {"k": 90, "grp": 0, "v": 9})
        engine.sync_changes()
        console = ManagementConsole(
            engine, freshness_monitor=FreshnessMonitor(engine)
        )
        text = console.render()
        assert "incremental maintenance: on" in text
        assert "by_group [groups]: in sync" in text
        report = console.system_report()
        assert report["freshness"]["counters"]["views_delta_refreshed"] == 1


# -- the bit-identity property ------------------------------------------------


def _apply_ops(source, ops):
    """Interpret an op stream against the relational source, via CDC DML."""
    live = {row[0] for rowid, row in source.database.table("t").scan()}
    next_key = (max(live) + 1) if live else 0
    for kind, pick, grp, v in ops:
        keys = sorted(live)
        if kind == "insert" or not keys:
            source.insert_row("t", {"k": next_key, "grp": grp, "v": v})
            live.add(next_key)
            next_key += 1
        elif kind == "update":
            key = keys[pick % len(keys)]
            source.update_row("t", key, {"grp": grp, "v": v})
        else:
            key = keys[pick % len(keys)]
            source.delete_row("t", key)
            live.discard(key)


VIEW_NAMES = ("big_items", "by_group", "group_extremes")

OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(0, 99),
        st.integers(0, 4),
        st.integers(0, 22),
    ),
    min_size=1,
    max_size=12,
)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestBitIdentityProperty:
    @given(
        n_rows=st.integers(2, 24),
        seed=st.integers(1, 50),
        batches=st.lists(OPS, min_size=1, max_size=3),
        cache=st.booleans(),
        faulty=st.booleans(),
        sharded=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_maintained_equals_full_rematerialization(
        self, n_rows, seed, batches, cache, faulty, sharded
    ):
        kwargs = dict(fragment_cache_bytes=300_000 if cache else 0)
        if faulty:
            kwargs["resilience"] = _retrying()
        faults = FaultModel(failure_rate=0.08, seed=seed) if faulty else None
        engine, source = build_deployment(seeded_rows(n_rows, seed), faults,
                                          **kwargs)
        for name in VIEW_NAMES:
            engine.maintain_view(name)
        for ops in batches:
            _apply_ops(source, ops)
            engine.sync_changes()
            for name in VIEW_NAMES:
                assert maintained_elements(engine, name) == fresh_elements(
                    engine, name
                ), name
        if sharded:
            # the maintained answer also matches a sharded scatter-gather
            # execution over a fresh partition of the mutated data
            deployment = partition_registry(
                engine.catalog.registry, {"s": "k"}, 2
            )
            router = ShardRouter(engine, deployment)
            for name in VIEW_NAMES:
                resolved = engine.catalog.resolve(name)
                routed = router.query(resolved.query)
                assert maintained_elements(engine, name) == [
                    serialize(e) for e in routed.elements
                ], name

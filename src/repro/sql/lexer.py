"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "ASC", "DESC", "LIMIT", "OFFSET", "AS", "JOIN", "INNER", "LEFT", "OUTER",
    "ON", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
    "INDEX", "DROP", "PRIMARY", "KEY", "UNIQUE", "TRUE", "FALSE",
    "CROSS", "USING",
}

OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")
PUNCT = "(),.;?"


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is KEYWORD, IDENT, NUMBER, STRING, OP, PUNCT or EOF."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("IDENT", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            if i < n and text[i] in "eE":
                i += 1
                if i < n and text[i] in "+-":
                    i += 1
                while i < n and text[i].isdigit():
                    i += 1
            tokens.append(Token("NUMBER", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' as the escape for a quote."""
    parts: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError(f"unterminated string literal at offset {start}")

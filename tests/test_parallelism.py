"""The parallel execution layer: timelines, prefetching, batching, caching.

The load-bearing property: fan-out and batch size are *performance*
knobs — for any setting, query results, completeness, and every stats
counter except elapsed virtual time must be identical to the serial
run, and the parallel run must never be slower in virtual time.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro import NimbleEngine, TaskGroup, Timeline
from repro.core.engine import EngineStats
from repro.errors import SourceUnavailableError
from repro.mediator.catalog import Catalog
from repro.resilience import FaultModel, ResiliencePolicy, RetryPolicy
from repro.simtime import SimClock
from repro.sources.base import (
    CapabilityProfile,
    DataSource,
    NetworkModel,
)
from repro.sources.flaky import FlakySource
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sql import Database
from repro.workloads import make_website_workload
from repro.xmldm.serializer import serialize

FANOUT_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

DEPENDENT_QUERY = (
    'WHERE <page sku=$s><name>$n</name></page> IN "product_page", '
    '<r><sku>$s</sku><rating>$rt</rating></r> IN "review_summary" '
    "CONSTRUCT <row sku=$s><rating>$rt</rating></row> ORDER BY $s"
)


def run_config(query, fan_out, batch_size, n_products=12, seed=23):
    workload = make_website_workload(n_products, seed=seed, extended=True)
    engine = NimbleEngine(
        workload.catalog,
        max_parallel_fetches=fan_out,
        batch_size=batch_size,
    )
    return engine.query(query)


def signature(result) -> list[str]:
    return [serialize(element) for element in result.elements]


# -- timelines -----------------------------------------------------------------


class TestVirtualTimeConcurrency:
    def test_join_advances_by_max_not_sum(self):
        clock = SimClock()
        group = TaskGroup(clock)
        for cost in (30.0, 70.0, 50.0):
            with group.task():
                clock.advance(cost)
        assert clock.now == 0.0  # nothing joined yet
        group.join()
        assert clock.now == 70.0
        assert group.elapsed_serial == 150.0

    def test_ambient_timeline_receives_nested_charges(self):
        # code written against the shared clock (network models, retry
        # backoff) is transparently charged to the active timeline
        clock = SimClock()
        network = NetworkModel(latency_ms=25.0, per_row_ms=1.0)
        group = TaskGroup(clock)
        with group.task("a") as timeline:
            network.charge_call(clock)
            network.charge_rows(clock, 5)
            assert timeline.elapsed == 30.0
        with group.task("b"):
            clock.advance(12.0)
        group.join()
        assert clock.now == 30.0

    def test_timeline_now_visible_during_task(self):
        clock = SimClock(start_ms=100.0)
        group = TaskGroup(clock)
        with group.task():
            clock.advance(40.0)
            assert clock.now == 140.0
        assert clock.now == 100.0
        assert clock.base_now == 100.0
        group.join()
        assert clock.now == 140.0

    def test_empty_group_join_is_free(self):
        clock = SimClock()
        assert TaskGroup(clock).join() == 0.0
        assert clock.now == 0.0

    def test_timeline_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            Timeline(0.0).advance(-1.0)


# -- determinism under parallelism ---------------------------------------------


class TestParallelDeterminism:
    @given(fan_out=st.integers(1, 8), batch_size=st.sampled_from([1, 2, 8, 32]),
           seed=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_results_and_counters_invariant(self, fan_out, batch_size, seed):
        for query in (FANOUT_QUERY, DEPENDENT_QUERY):
            serial = run_config(query, 1, 1, seed=seed)
            tuned = run_config(query, fan_out, batch_size, seed=seed)
            assert signature(tuned) == signature(serial)
            assert tuned.completeness.complete == serial.completeness.complete
            assert (tuned.completeness.missing_sources
                    == serial.completeness.missing_sources)
            assert (tuned.completeness.stale_sources
                    == serial.completeness.stale_sources)
            serial_counters = serial.stats.counters()
            tuned_counters = tuned.stats.counters()
            # batching legitimately *reduces* remote calls; every other
            # counter must match the serial run exactly
            assert tuned_counters.pop("remote_calls") <= serial_counters.pop(
                "remote_calls"
            )
            assert tuned_counters == serial_counters
            assert (tuned.stats.elapsed_virtual_ms
                    <= serial.stats.elapsed_virtual_ms)

    def test_batch_one_remote_calls_match_serial(self):
        serial = run_config(DEPENDENT_QUERY, 1, 1)
        parallel = run_config(DEPENDENT_QUERY, 8, 1)
        assert parallel.stats.counters() == serial.stats.counters()

    def test_fanout_overlaps_independent_fetches(self):
        serial = run_config(FANOUT_QUERY, 1, 1, n_products=20)
        pooled = run_config(FANOUT_QUERY, 4, 1, n_products=20)
        assert pooled.stats.parallel_waves == 1
        assert pooled.stats.elapsed_virtual_ms * 2 < serial.stats.elapsed_virtual_ms

    def test_batching_collapses_remote_calls(self):
        per_row = run_config(DEPENDENT_QUERY, 1, 1, n_products=32)
        batched = run_config(DEPENDENT_QUERY, 1, 32, n_products=32)
        # 32 dependent probes collapse into one batched call
        assert batched.stats.batch_calls == 1
        assert batched.stats.remote_calls < per_row.stats.remote_calls / 10
        assert signature(batched) == signature(per_row)

    def test_determinism_under_faults_and_retries(self):
        # same fan-out, injected transient faults: two runs see identical
        # fault schedules, and the pooled run still matches the serial one
        def build(fan_out):
            workload = make_website_workload(10, seed=5, extended=True)
            for name in ("erp", "logistics"):
                source = workload.registry.get(name)
                source.faults = FaultModel(failure_rate=0.3, seed=17)
            return NimbleEngine(
                workload.catalog,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=4, base_backoff_ms=5.0),
                    breaker=None,
                ),
                max_parallel_fetches=fan_out,
            )

        serial = build(1).query(FANOUT_QUERY)
        pooled = build(4).query(FANOUT_QUERY)
        assert signature(pooled) == signature(serial)
        assert pooled.stats.counters() == serial.stats.counters()
        assert (pooled.stats.elapsed_virtual_ms
                <= serial.stats.elapsed_virtual_ms)


# -- engine knobs --------------------------------------------------------------


class TestEngineKnobs:
    def test_invalid_fan_out_rejected(self):
        workload = make_website_workload(4, seed=1)
        with pytest.raises(ValueError):
            NimbleEngine(workload.catalog, max_parallel_fetches=0)

    def test_invalid_batch_size_rejected(self):
        workload = make_website_workload(4, seed=1)
        with pytest.raises(ValueError):
            NimbleEngine(workload.catalog, batch_size=0)

    def test_schedule_counters_absorbed(self):
        stats = EngineStats(parallel_waves=2, batch_calls=3)
        other = EngineStats(parallel_waves=1, batch_calls=4)
        stats.absorb(other)
        assert stats.parallel_waves == 3
        assert stats.batch_calls == 7


# -- execute_batch at the source layer -----------------------------------------


class _BatchlessParamSource(DataSource):
    """Parameterized but not batch-capable: one call per parameter set."""

    capabilities = CapabilityProfile(parameterized=True)

    def __init__(self, name="plain"):
        super().__init__(name, network=NetworkModel(latency_ms=10.0))

    def relations(self):
        from repro.xmldm.schema import RecordType

        return {"r": RecordType.of("r", k="string")}

    def cardinality(self, relation):
        return 1

    def _execute(self, fragment, params):
        from repro.xmldm.values import Record

        yield Record({"k": params.get("k", "none")})


class TestExecuteBatch:
    def _fragment(self):
        from repro.algebra.pattern import TreePattern
        from repro.sources.base import Access, Fragment

        pattern = TreePattern("r", children=(TreePattern("k", text_var="k"),))
        return Fragment("plain", (Access("r", pattern),), input_vars=("k",))

    def test_fallback_pays_one_call_per_set(self):
        source = _BatchlessParamSource()
        results = source.execute_batch(
            self._fragment(), [{"k": "a"}, {"k": "b"}, {"k": "c"}]
        )
        assert [len(rows) for rows in results] == [1, 1, 1]
        assert source.network.calls == 3
        assert source.clock.now == 30.0

    def test_batch_capable_pays_one_call_total(self):
        source = _BatchlessParamSource()
        source.capabilities = CapabilityProfile(
            parameterized=True, batch_parameters=True
        )
        results = source.execute_batch(
            self._fragment(), [{"k": "a"}, {"k": "b"}, {"k": "c"}]
        )
        assert [rows[0]["k"] for rows in results] == ["a", "b", "c"]
        assert source.network.calls == 1
        assert source.clock.now == 10.0

    def test_empty_batch_is_free(self):
        source = _BatchlessParamSource()
        assert source.execute_batch(self._fragment(), []) == []
        assert source.network.calls == 0


# -- compiled-plan cache -------------------------------------------------------


def _relational_catalog():
    db = Database()
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    db.insert_rows("t", [[i, i * 10] for i in range(5)])
    registry = SourceRegistry(SimClock())
    registry.register(RelationalSource("s", db))
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    return catalog, db


QUERY_TEXT = (
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items" '
    "CONSTRUCT <r>$k</r> ORDER BY $k"
)


class TestPlanCache:
    def test_repeat_query_hits_cache(self):
        catalog, _ = _relational_catalog()
        engine = NimbleEngine(catalog)
        first = engine.query(QUERY_TEXT)
        second = engine.query(QUERY_TEXT)
        assert engine.plan_cache_misses == 1
        assert engine.plan_cache_hits == 1
        assert first.stats.plan_cache_hits == 0
        assert second.stats.plan_cache_hits == 1
        assert signature(first) == signature(second)

    def test_catalog_change_invalidates(self):
        catalog, db = _relational_catalog()
        engine = NimbleEngine(catalog)
        engine.query(QUERY_TEXT)
        catalog.map_relation("extra", "s", "t")
        engine.query(QUERY_TEXT)
        assert engine.plan_cache_misses == 2

    def test_source_registration_invalidates(self):
        catalog, _ = _relational_catalog()
        engine = NimbleEngine(catalog)
        engine.query(QUERY_TEXT)
        other = Database()
        other.execute("CREATE TABLE u (k INTEGER)")
        catalog.registry.register(RelationalSource("s2", other))
        engine.query(QUERY_TEXT)
        assert engine.plan_cache_misses == 2

    def test_eviction_bound_holds(self):
        catalog, _ = _relational_catalog()
        engine = NimbleEngine(catalog, plan_cache_size=2)
        for limit in (1, 2, 3, 4):
            engine.query(QUERY_TEXT.replace("ORDER BY $k",
                                            f"ORDER BY $k LIMIT {limit}"))
        assert len(engine._plan_cache) == 2

    def test_ast_queries_bypass_cache(self):
        from repro.query.parser import parse_query

        catalog, _ = _relational_catalog()
        engine = NimbleEngine(catalog)
        query = parse_query(QUERY_TEXT)
        engine.query(query)
        engine.query(query)
        assert engine.plan_cache_hits == 0
        assert engine.plan_cache_misses == 0

    def test_cache_disabled_with_zero_size(self):
        catalog, _ = _relational_catalog()
        engine = NimbleEngine(catalog, plan_cache_size=0)
        engine.query(QUERY_TEXT)
        engine.query(QUERY_TEXT)
        assert engine.plan_cache_hits == 0


# -- maintenance path goes through the resilience ladder -----------------------


class TestMaterializeThroughContext:
    def test_materialize_query_fragments_retries_faults(self):
        from repro.materialize.manager import MaterializationManager

        workload = make_website_workload(8, seed=3)
        erp = workload.registry.get("erp")
        # fail the first attempt of every call; one retry succeeds
        erp.faults = FaultModel(failure_rate=1.0, seed=1)
        attempts = {"n": 0}
        original = erp.faults.inject_call

        def flaky_once(source_name, clock, latency_ms):
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:
                original(source_name, clock, latency_ms)

        erp.faults.inject_call = flaky_once
        engine = NimbleEngine(
            workload.catalog,
            materializer=MaterializationManager(workload.clock),
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, base_backoff_ms=2.0),
                breaker=None,
            ),
        )
        count = engine.materialize_query_fragments(
            'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
            "CONSTRUCT <r sku=$s>$p</r>"
        )
        assert count == 1
        # the transient fault was retried by the policy, not surfaced
        assert engine.resilient.total_retries >= 1

    def test_materialize_query_fragments_raises_when_source_down(self):
        from repro.materialize.manager import MaterializationManager

        workload = make_website_workload(8, seed=3)
        flaky = FlakySource(workload.registry.get("erp"))
        flaky.force_offline()
        workload.registry._sources["erp"] = flaky
        engine = NimbleEngine(
            workload.catalog,
            materializer=MaterializationManager(workload.clock),
        )
        with pytest.raises(SourceUnavailableError):
            engine.materialize_query_fragments(
                'WHERE <s><sku>$s</sku><price>$p</price></s> IN "stock" '
                "CONSTRUCT <r sku=$s>$p</r>"
            )

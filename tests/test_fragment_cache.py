"""The on-demand fragment result cache (E11).

The load-bearing property mirrors the parallelism layer's: the cache is
a *performance* knob — for any budget, TTL, or containment setting,
query results, completeness, and every invariant stats counter must be
identical to the cache-less run.  On top of that transparency sit the
mechanisms themselves: LRU eviction under a byte budget, TTL and
catalog-epoch invalidation, containment serving, single-flight dedup,
and cost-model feedback.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro import NimbleEngine
from repro.algebra.pattern import TreePattern
from repro.cache import FragmentResultCache, StatisticsFeedback
from repro.cache.keys import params_key, result_key
from repro.materialize.matching import implies
from repro.materialize.policy import RefreshPolicy
from repro.optimizer.costs import CostModel
from repro.optimizer.planner import PlanBuilder
from repro.query import ast as qast
from repro.resilience import FaultModel, ResiliencePolicy, RetryPolicy
from repro.simtime import SimClock
from repro.sources.base import Access, CapabilityProfile, Fragment
from repro.workloads import make_website_workload
from repro.xmldm.serializer import serialize
from repro.xmldm.values import NULL, Record

FANOUT_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

DEPENDENT_QUERY = (
    'WHERE <page sku=$s><name>$n</name></page> IN "product_page", '
    '<r><sku>$s</sku><rating>$rt</rating></r> IN "review_summary" '
    "CONSTRUCT <row sku=$s><rating>$rt</rating></row> ORDER BY $s"
)

STOCK_QUERY = (
    'WHERE <t><sku>$s</sku><price>$p</price></t> IN "stock", $p > 100 '
    "CONSTRUCT <row sku=$s><price>$p</price></row> ORDER BY $s"
)

BROAD_STOCK_QUERY = (
    'WHERE <t><sku>$s</sku><price>$p</price></t> IN "stock", $p > 0 '
    "CONSTRUCT <row sku=$s><price>$p</price></row> ORDER BY $s"
)

#: duplicated content clause: XMLSource cannot join within a fragment,
#: so the two identical accesses stay two identical fragments
DUPLICATE_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock" '
    "CONSTRUCT <row sku=$s><price>$p</price></row> ORDER BY $s"
)


def signature(result) -> list[str]:
    return [serialize(element) for element in result.elements]


def make_engine(cache_bytes=1 << 20, n_products=12, seed=23, **kwargs):
    workload = make_website_workload(n_products, seed=seed, extended=True)
    engine = NimbleEngine(
        workload.catalog, fragment_cache_bytes=cache_bytes, **kwargs
    )
    return workload, engine


def var(name):
    return qast.Var(name)


def lit(value):
    return qast.Literal(value)


def binop(op, left, right):
    return qast.BinOp(op, left, right)


def make_fragment(source="erp", relation="stock", conditions=(),
                  variables=("s", "p")):
    pattern = TreePattern(
        "t", children=tuple(TreePattern(v, text_var=v) for v in variables)
    )
    return Fragment(source, (Access(relation, pattern),),
                    conditions=tuple(conditions))


def make_records(n, price=lambda i: 10.0 * i):
    return [Record({"s": f"SKU-{i}", "p": price(i)}) for i in range(n)]


# -- condition implication (containment's logic core) --------------------------


class TestImplies:
    def test_equality_implies_satisfied_range(self):
        assert implies(binop("=", var("p"), lit(7)), binop(">", var("p"), lit(5)))
        assert implies(binop("=", var("p"), lit(5)),
                       binop(">=", var("p"), lit(5)))
        assert not implies(binop("=", var("p"), lit(3)),
                           binop(">", var("p"), lit(5)))

    def test_conjunct_implies_whole(self):
        conj = binop("AND", binop(">", var("p"), lit(10)),
                     binop("<", var("q"), lit(2)))
        assert implies(conj, binop(">", var("p"), lit(5)))
        assert implies(conj, binop("<", var("q"), lit(2)))

    def test_whole_implies_disjunct(self):
        strong = binop(">", var("p"), lit(10))
        disj = binop("OR", binop(">", var("p"), lit(5)),
                     binop("=", var("q"), lit(1)))
        assert implies(strong, disj)

    def test_or_stronger_needs_both_branches(self):
        disj = binop("OR", binop(">", var("p"), lit(10)),
                     binop(">", var("p"), lit(20)))
        assert implies(disj, binop(">", var("p"), lit(5)))
        mixed = binop("OR", binop(">", var("p"), lit(10)),
                      binop("<", var("p"), lit(1)))
        assert not implies(mixed, binop(">", var("p"), lit(5)))

    def test_range_weakening_still_works(self):
        assert implies(binop(">", var("p"), lit(10)),
                       binop(">", var("p"), lit(5)))
        assert not implies(binop(">", var("p"), lit(5)),
                           binop(">", var("p"), lit(10)))


# -- the store itself ----------------------------------------------------------


class TestFragmentResultCacheUnit:
    def _cache(self, max_bytes=1 << 20, **kwargs):
        clock = SimClock()
        return clock, FragmentResultCache(clock, max_bytes=max_bytes, **kwargs)

    def test_exact_hit_returns_copy(self):
        clock, cache = self._cache()
        fragment = make_fragment()
        cache.insert(fragment, None, make_records(3), epoch=1)
        served = cache.lookup(fragment, None, epoch=1)
        assert [r.get("s") for r in served.records] == ["SKU-0", "SKU-1",
                                                        "SKU-2"]
        served.records.clear()  # caller mutation must not corrupt the entry
        assert len(cache.lookup(fragment, None, epoch=1).records) == 3

    def test_lru_evicts_least_recently_used(self):
        # containment off: B must not be answered from A after eviction
        clock, cache = self._cache(containment=False)
        frag_a = make_fragment(conditions=(binop(">", var("p"), lit(1)),))
        frag_b = make_fragment(conditions=(binop(">", var("p"), lit(2)),))
        frag_c = make_fragment(conditions=(binop(">", var("p"), lit(3)),))
        cache.insert(frag_a, None, make_records(3), epoch=1)
        cache.insert(frag_b, None, make_records(3), epoch=1)
        cache.max_bytes = cache.current_bytes  # full: next insert evicts
        assert cache.lookup(frag_a, None, epoch=1) is not None  # touch A
        cache.insert(frag_c, None, make_records(3), epoch=1)
        assert cache.lookup(frag_b, None, epoch=1) is None  # B was LRU
        assert cache.lookup(frag_a, None, epoch=1) is not None
        assert cache.evictions == 1

    def test_ttl_expires_on_virtual_clock(self):
        clock, cache = self._cache(default_policy=RefreshPolicy.ttl(100.0))
        fragment = make_fragment()
        cache.insert(fragment, None, make_records(2), epoch=1)
        clock.advance(99.0)
        assert cache.lookup(fragment, None, epoch=1) is not None
        clock.advance(50.0)
        assert cache.lookup(fragment, None, epoch=1) is None
        assert len(cache) == 0  # expired entries are dropped, not kept

    def test_per_source_policy_override(self):
        clock, cache = self._cache(
            default_policy=RefreshPolicy.ttl(1_000.0),
            policies={"volatile": RefreshPolicy.ttl(10.0)},
        )
        steady = make_fragment(source="erp")
        volatile = make_fragment(source="volatile")
        cache.insert(steady, None, make_records(2), epoch=1)
        cache.insert(volatile, None, make_records(2), epoch=1)
        clock.advance(50.0)
        assert cache.lookup(steady, None, epoch=1) is not None
        assert cache.lookup(volatile, None, epoch=1) is None

    def test_epoch_change_invalidates(self):
        clock, cache = self._cache()
        fragment = make_fragment()
        cache.insert(fragment, None, make_records(2), epoch=(1, 0))
        assert cache.lookup(fragment, None, epoch=(1, 0)) is not None
        assert cache.lookup(fragment, None, epoch=(2, 0)) is None

    def test_oversize_result_rejected(self):
        clock, cache = self._cache(max_bytes=200)
        fragment = make_fragment()
        assert cache.insert(fragment, None, make_records(50), epoch=1) == 0
        assert cache.oversize_rejects == 1
        assert len(cache) == 0

    def test_invalidate_source_drops_only_that_source(self):
        clock, cache = self._cache()
        cache.insert(make_fragment(source="erp"), None, make_records(2), 1)
        cache.insert(make_fragment(source="crm"), None, make_records(2), 1)
        assert cache.invalidate_source("erp") == 1
        assert cache.entries_by_source() == {"crm": 1}

    def test_containment_serves_narrower_fragment(self):
        clock, cache = self._cache()
        broad = make_fragment()
        cache.insert(broad, None, make_records(5), epoch=1)
        narrow = make_fragment(conditions=(binop(">", var("p"), lit(15)),))
        served = cache.lookup(narrow, None, epoch=1)
        assert served is not None and served.containment
        assert served.residual_conditions == 1
        assert [r.get("p") for r in served.records] == [20.0, 30.0, 40.0]
        assert cache.containment_hits == 1

    def test_containment_filters_null_and_or_predicates(self):
        clock, cache = self._cache()
        broad = make_fragment()
        records = [
            Record({"s": "SKU-0", "p": NULL}),
            Record({"s": "SKU-1", "p": 5.0}),
            Record({"s": "SKU-2", "p": 50.0}),
        ]
        cache.insert(broad, None, records, epoch=1)
        narrow = make_fragment(conditions=(
            binop("OR", binop(">", var("p"), lit(40)),
                  binop("=", var("p"), lit(5))),
        ))
        served = cache.lookup(narrow, None, epoch=1)
        assert served is not None and served.containment
        # the Null price satisfies neither disjunct and is filtered out
        assert [r.get("s") for r in served.records] == ["SKU-1", "SKU-2"]

    def test_containment_knob_disables_scan(self):
        clock, cache = self._cache(containment=False)
        cache.insert(make_fragment(), None, make_records(5), epoch=1)
        narrow = make_fragment(conditions=(binop(">", var("p"), lit(15)),))
        assert cache.lookup(narrow, None, epoch=1) is None
        assert cache.misses == 1

    def test_containment_never_serves_parameterized(self):
        clock, cache = self._cache()
        cache.insert(make_fragment(), None, make_records(5), epoch=1)
        dependent = Fragment(
            "erp",
            make_fragment().accesses,
            input_vars=("s",),
        )
        assert cache.lookup(dependent, {"s": "SKU-1"}, epoch=1) is None

    def test_parameter_sets_cache_separately(self):
        clock, cache = self._cache()
        fragment = make_fragment(variables=("s", "rt"))
        cache.insert(fragment, {"s": "A"}, make_records(1), epoch=1)
        assert cache.lookup(fragment, {"s": "A"}, epoch=1) is not None
        assert cache.lookup(fragment, {"s": "B"}, epoch=1) is None
        assert params_key({"s": "A"}) != params_key({"s": "B"})
        assert result_key(fragment, {"s": "A"}) != result_key(fragment)

    def test_resident_rows_does_not_perturb_lru(self):
        clock, cache = self._cache()
        frag_a = make_fragment(conditions=(binop(">", var("p"), lit(1)),))
        frag_b = make_fragment(conditions=(binop(">", var("p"), lit(2)),))
        cache.insert(frag_a, None, make_records(3), epoch=1)
        cache.insert(frag_b, None, make_records(3), epoch=1)
        cache.max_bytes = cache.current_bytes
        # a planner probe of A must NOT rescue it from eviction
        assert cache.resident_rows(frag_a, epoch=1) == 3
        cache.insert(make_fragment(conditions=(binop(">", var("p"), lit(3)),)),
                     None, make_records(3), epoch=1)
        assert cache.resident_rows(frag_a, epoch=1) is None

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            FragmentResultCache(SimClock(), max_bytes=0)


# -- engine integration --------------------------------------------------------


class TestEngineCacheIntegration:
    def test_warm_repeat_serves_from_cache(self):
        _, engine = make_engine()
        cold = engine.query(STOCK_QUERY)
        warm = engine.query(STOCK_QUERY)
        assert signature(warm) == signature(cold)
        assert warm.stats.remote_calls == 0
        assert warm.stats.cache_counters()["fragment_cache_hits"] == 1
        assert warm.stats.elapsed_virtual_ms < cold.stats.elapsed_virtual_ms

    def test_containment_serves_narrower_query(self):
        _, engine = make_engine()
        engine.query(BROAD_STOCK_QUERY)
        narrow = engine.query(STOCK_QUERY)
        assert narrow.stats.remote_calls == 0
        assert narrow.stats.cache_counters()["containment_hits"] == 1
        # ground truth from a cache-less engine
        _, bare = make_engine(cache_bytes=0)
        assert signature(narrow) == signature(bare.query(STOCK_QUERY))

    def test_cache_hit_spends_no_retry_budget(self):
        workload, engine = make_engine(
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3), breaker=None
            ),
        )
        engine.query(STOCK_QUERY)
        workload.registry.get("erp").available = lambda: False
        served = engine.query(STOCK_QUERY)
        assert served.completeness.complete
        assert served.stats.remote_calls == 0
        assert served.stats.retries == 0
        assert served.stats.cache_counters()["fragment_cache_hits"] == 1

    def test_catalog_epoch_invalidates_entries(self):
        workload, engine = make_engine()
        engine.query(STOCK_QUERY)
        workload.catalog.map_relation("stock_again", "erp", "stock")
        refetched = engine.query(STOCK_QUERY)
        assert refetched.stats.remote_calls == 1
        assert refetched.stats.cache_counters()["fragment_cache_misses"] == 1

    def test_uncacheable_source_bypasses_cache(self):
        from dataclasses import replace

        workload, engine = make_engine()
        source = workload.registry.get("erp")
        source.capabilities = replace(source.capabilities, cacheable=False)
        engine.query(STOCK_QUERY)
        second = engine.query(STOCK_QUERY)
        assert second.stats.remote_calls == 1
        assert second.stats.cache_counters()["fragment_cache_hits"] == 0
        assert len(engine.fragment_cache) == 0

    def test_singleflight_dedups_within_wave(self):
        _, engine = make_engine(max_parallel_fetches=2)
        result = engine.query(DUPLICATE_QUERY)
        cache = result.stats.cache_counters()
        assert cache["singleflight_dedups"] == 1
        # the duplicate content fragment cost one call, not two
        assert result.stats.remote_calls == 2

    def test_serial_duplicate_hits_cache_instead(self):
        _, engine = make_engine(max_parallel_fetches=1)
        result = engine.query(DUPLICATE_QUERY)
        cache = result.stats.cache_counters()
        assert cache["singleflight_dedups"] == 0
        assert cache["fragment_cache_hits"] == 1
        assert result.stats.remote_calls == 2

    def test_duplicate_query_results_cache_invariant(self):
        baseline = make_engine(cache_bytes=0)[1].query(DUPLICATE_QUERY)
        for fan_out in (1, 2):
            cached = make_engine(max_parallel_fetches=fan_out)[1].query(
                DUPLICATE_QUERY
            )
            assert signature(cached) == signature(baseline)

    def test_batched_probes_share_cache_with_per_row(self):
        _, batched = make_engine(batch_size=8)
        _, per_row = make_engine(batch_size=1)
        first = batched.query(DEPENDENT_QUERY)
        warm = batched.query(DEPENDENT_QUERY)
        assert warm.stats.remote_calls < first.stats.remote_calls
        assert signature(warm) == signature(first)
        assert signature(per_row.query(DEPENDENT_QUERY)) == signature(first)

    def test_negative_budget_rejected(self):
        workload = make_website_workload(4, seed=1)
        with pytest.raises(ValueError):
            NimbleEngine(workload.catalog, fragment_cache_bytes=-1)

    def test_cache_disabled_by_default(self):
        workload = make_website_workload(4, seed=1)
        engine = NimbleEngine(workload.catalog)
        assert engine.fragment_cache is None
        assert engine.feedback is None


# -- transparency under every configuration ------------------------------------


class TestCacheTransparency:
    @given(cache_bytes=st.sampled_from([0, 4_096, 1 << 20]),
           fan_out=st.sampled_from([1, 4]),
           batch_size=st.sampled_from([1, 8]),
           repeats=st.integers(1, 3),
           seed=st.integers(0, 2))
    @settings(max_examples=20, deadline=None)
    def test_results_identical_cache_on_or_off(self, cache_bytes, fan_out,
                                               batch_size, repeats, seed):
        for query in (FANOUT_QUERY, DEPENDENT_QUERY):
            _, bare = make_engine(cache_bytes=0, seed=seed)
            _, cached = make_engine(
                cache_bytes=cache_bytes, seed=seed,
                max_parallel_fetches=fan_out, batch_size=batch_size,
            )
            expected = bare.query(query)
            for _ in range(repeats):
                result = cached.query(query)
                assert signature(result) == signature(expected)
                assert (result.completeness.complete
                        == expected.completeness.complete)
                assert (result.completeness.missing_sources
                        == expected.completeness.missing_sources)

    def test_cold_counters_identical_to_cacheless(self):
        # a cache that never hits must be invisible to counters()
        _, bare = make_engine(cache_bytes=0)
        _, cached = make_engine()
        for query in (FANOUT_QUERY, DEPENDENT_QUERY):
            assert (cached.query(query).stats.counters()
                    == bare.query(query).stats.counters())

    def test_results_identical_under_faults(self):
        def build(cache_bytes):
            workload = make_website_workload(10, seed=5, extended=True)
            for name in ("erp", "logistics"):
                workload.registry.get(name).faults = FaultModel(
                    failure_rate=0.2, seed=17
                )
            return NimbleEngine(
                workload.catalog,
                fragment_cache_bytes=cache_bytes,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=6, base_backoff_ms=5.0),
                    breaker=None,
                ),
            )

        bare, cached = build(0), build(1 << 20)
        expected = bare.query(FANOUT_QUERY)
        for _ in range(3):
            result = cached.query(FANOUT_QUERY)
            assert signature(result) == signature(expected)
            assert result.completeness.complete

    def test_cache_counters_absorbed_but_not_in_counters(self):
        from repro.core.engine import EngineStats

        stats = EngineStats(fragment_cache_hits=2, singleflight_dedups=1)
        stats.absorb(EngineStats(fragment_cache_hits=3, containment_hits=4))
        assert stats.fragment_cache_hits == 5
        assert stats.containment_hits == 4
        assert stats.singleflight_dedups == 1
        assert "fragment_cache_hits" not in stats.counters()
        assert stats.cache_counters()["fragment_cache_hits"] == 5


# -- cache-aware planning and statistics feedback ------------------------------


class TestPlanningFeedback:
    def test_feedback_beats_folklore_selectivity(self):
        workload = make_website_workload(8, seed=3)
        source = workload.registry.get("erp")
        model = CostModel()
        fragment = make_fragment(
            conditions=(binop(">", var("p"), lit(100)),)
        )
        folklore = model.estimate_rows(fragment, source)
        feedback = StatisticsFeedback()
        feedback.observe(fragment, 3)
        model.bind_feedback(feedback)
        assert model.estimate_rows(fragment, source) == 3.0
        assert folklore != 3.0

    def test_feedback_is_ewma_not_last_write(self):
        feedback = StatisticsFeedback(alpha=0.5)
        fragment = make_fragment()
        feedback.observe(fragment, 100)
        feedback.observe(fragment, 0)
        assert feedback.rows_for(fragment) == 50.0
        assert feedback.updates == 2

    def test_engine_feeds_observations_back(self):
        _, engine = make_engine()
        result = engine.query(STOCK_QUERY)
        assert result.stats.cache_counters()["estimate_feedback_updates"] == 1
        # one fragment observed, with the actual (not folklore) row count
        assert len(engine.feedback) == 1
        assert list(engine.feedback._rows.values()) == [len(result.elements)]

    def test_residency_orders_cached_units_first(self):
        model = CostModel()
        cached_fragment = make_fragment(
            conditions=(binop(">", var("p"), lit(100)),)
        )
        cached_key = result_key(cached_fragment)
        model.bind_residency(
            lambda fragment: 5 if result_key(fragment) == cached_key else None
        )
        workload = make_website_workload(8, seed=3)
        source = workload.registry.get("erp")

        from repro.optimizer.decomposer import FragmentUnit

        huge_but_uncached = FragmentUnit(
            make_fragment(), source, ("s", "p")
        )
        small_cached = FragmentUnit(cached_fragment, source, ("s", "p"))
        builder = PlanBuilder(model)
        ordered = builder._order_units([huge_but_uncached, small_cached])
        assert ordered[0] is small_cached

    def test_loaded_view_ranks_by_actual_count(self):
        from types import SimpleNamespace

        clock = SimClock()

        class _View(SimpleNamespace):
            def is_fresh(self, now):
                return self.fresh

        materializer = SimpleNamespace(
            clock=clock,
            views={
                "loaded": _View(elements=["e"] * 7, fresh=True),
                "stale": _View(elements=["e"] * 7, fresh=False),
            },
        )
        builder = PlanBuilder(CostModel(), materializer=materializer)
        assert builder._loaded_view_size("loaded") == 7
        assert builder._loaded_view_size("stale") is None
        assert builder._loaded_view_size("never_loaded") is None


# -- monitoring ----------------------------------------------------------------


class TestCacheMonitor:
    def test_snapshot_reports_cache_health(self):
        from repro.admin import CacheMonitor

        _, engine = make_engine()
        engine.query(STOCK_QUERY)
        engine.query(STOCK_QUERY)
        snapshot = CacheMonitor(engine).snapshot()
        fragment = snapshot["fragment_cache"]
        assert fragment["entries"] == 1
        assert fragment["hits"] == 1
        assert fragment["by_source"] == {"erp": 1}
        assert 0 < fragment["fill_fraction"] < 1
        assert snapshot["plan_cache_hits"] == 1

    def test_snapshot_with_cache_disabled(self):
        from repro.admin import CacheMonitor

        _, engine = make_engine(cache_bytes=0)
        engine.query(STOCK_QUERY)
        snapshot = CacheMonitor(engine).snapshot()
        assert snapshot["fragment_cache"] is None
        assert CacheMonitor(engine).hot_sources() == []

    def test_hot_sources_ranked(self):
        from repro.admin import CacheMonitor

        _, engine = make_engine()
        engine.query(FANOUT_QUERY)
        hot = CacheMonitor(engine).hot_sources(top=2)
        assert len(hot) == 2
        assert all(count >= 1 for _, count in hot)

"""Element construction with XML-QL-style grouping.

A CONSTRUCT template builds one element per *distinct combination of the
variables it uses directly*; nested templates repeat within their parent
group.  That is the practical reading of XML-QL's Skolem-function
grouping: in

    CONSTRUCT <result><owner>$o</owner> <car>$c</car></result>

each (o, c) pair makes a result, while

    CONSTRUCT <owner name=$o> <car>$c</car> </owner>

makes one ``owner`` per distinct $o containing all of that owner's cars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Union

from repro.algebra.operators import Operator
from repro.algebra.tuples import BindingTuple
from repro.xmldm.nodes import Element, Text
from repro.algebra.grouping import _aggregate
from repro.xmldm.schema import atomic_to_text
from repro.xmldm.values import NULL, Collection, Null, Record, _comparison_key


@dataclass(frozen=True)
class TemplateText:
    """Literal text content inside a template."""

    text: str


@dataclass(frozen=True)
class TemplateVar:
    """A ``$var`` reference inside a template."""

    var: str


@dataclass(frozen=True)
class TemplateAggregate:
    """``kind($var)`` content: aggregate the variable over the element's
    group.  Aggregated variables never contribute to grouping identity —
    they are what grouping summarizes."""

    kind: str  # count | sum | avg | min | max
    var: str


TemplateItem = Union[TemplateText, TemplateVar, TemplateAggregate, "ConstructTemplate"]


@dataclass(frozen=True)
class ConstructTemplate:
    """An element template: tag, attributes, ordered content items.

    Attribute values are either literal strings or :class:`TemplateVar`.
    """

    tag: str
    attributes: tuple[tuple[str, "str | TemplateVar"], ...] = ()
    children: tuple[TemplateItem, ...] = ()

    def direct_vars(self) -> tuple[str, ...]:
        """Grouping variables: used directly, excluding aggregated ones."""
        names: list[str] = []
        for _, value in self.attributes:
            if isinstance(value, TemplateVar):
                names.append(value.var)
        for item in self.children:
            if isinstance(item, TemplateVar):
                names.append(item.var)
        return tuple(dict.fromkeys(names))

    def all_vars(self) -> tuple[str, ...]:
        """Non-aggregated variables of the whole subtree."""
        names = list(self.direct_vars())
        for item in self.children:
            if isinstance(item, ConstructTemplate):
                names.extend(item.all_vars())
        return tuple(dict.fromkeys(names))

    def has_aggregates(self) -> bool:
        return any(
            isinstance(item, TemplateAggregate)
            or (isinstance(item, ConstructTemplate) and item.has_aggregates())
            for item in self.children
        )

    def describe(self) -> str:
        return f"<{self.tag}>...({len(self.children)} items)"


def build_elements(
    template: ConstructTemplate, rows: list[BindingTuple]
) -> list[Element]:
    """Instantiate ``template`` over ``rows`` with grouped nesting.

    Grouping key: the template's *direct* variables when it has any —
    they determine the element's identity, the practical reading of
    XML-QL's implicit Skolem functions — otherwise all variables in its
    subtree (one element per distinct binding, duplicates collapsed).
    """
    group_vars = template.direct_vars() or template.all_vars()
    groups: dict[tuple, list[BindingTuple]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(_comparison_key(row.get(var, NULL)) for var in group_vars)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    elements: list[Element] = []
    for key in order:
        members = groups[key]
        representative = members[0]
        element = Element(template.tag)
        for name, value in template.attributes:
            if isinstance(value, TemplateVar):
                bound = representative.get(value.var, NULL)
                element.attributes[name] = (
                    "" if isinstance(bound, Null) else atomic_to_text(bound)
                    if not isinstance(bound, (Element, Record, Collection))
                    else str(bound)
                )
            else:
                element.attributes[name] = value
        for item in template.children:
            if isinstance(item, TemplateText):
                if item.text:
                    element.append(Text(item.text))
            elif isinstance(item, TemplateVar):
                _append_value(element, representative.get(item.var, NULL))
            elif isinstance(item, TemplateAggregate):
                values = [member.get(item.var, NULL) for member in members]
                if item.kind != "count":
                    # XML content is text: coerce numeric-looking strings
                    # so sum/avg/min/max behave like their SQL namesakes
                    values = [_numeric_or_self(v) for v in values]
                _append_value(element, _aggregate(item.kind, values))
            else:
                for child in build_elements(item, members):
                    element.append(child)
        elements.append(element)
    return elements


def _numeric_or_self(value: Any) -> Any:
    if isinstance(value, str):
        try:
            number = float(value)
        except ValueError:
            return value
        return int(number) if number.is_integer() else number
    return value


def _append_value(element: Element, value: Any) -> None:
    """Render a bound value as element content."""
    if isinstance(value, Null):
        return
    if isinstance(value, Element):
        element.append(value.copy())
        return
    if isinstance(value, Record):
        for name, field_value in value.items():
            wrapper = Element(name)
            _append_value(wrapper, field_value)
            element.append(wrapper)
        return
    if isinstance(value, Collection):
        for item in value:
            _append_value(element, item)
        return
    text = atomic_to_text(value)
    if text:
        element.append(Text(text))


class Construct(Operator):
    """Materialize the input and build result elements from a template.

    Yields one tuple per constructed top-level element, bound to
    ``out_var``.  Construct is a pipeline breaker (grouping requires the
    full input), mirroring the physical reality the paper's engine faced.
    """

    def __init__(self, child: Operator, template: ConstructTemplate, out_var: str = "result"):
        super().__init__(child)
        self.template = template
        self.out_var = out_var

    def _produce(self) -> Iterator[BindingTuple]:
        rows = list(self.children[0])
        if not rows:
            return
        for element in build_elements(self.template, rows):
            yield BindingTuple({self.out_var: element})

    def describe(self) -> str:
        return f"Construct({self.template.describe()} -> ${self.out_var})"

"""E2 — choosing what to materialize under drift and bad cost estimates.

Paper claim (section 3.3): deciding which data to materialize is an
open problem, complicated by (1) autonomous, overlapping sources,
(2) "we may need to adjust the set of materialized views over time
depending on the query load", (3) "we do not have good cost estimates
for querying over remote data sources".

The bench runs a 400-query Zipf workload whose hot set drifts, under a
storage budget, comparing:

* ``no-cache``  — every query virtual;
* ``static``    — views selected once from the first window, frozen
  (the "warehouse schema designed up front" analogue);
* ``adaptive``  — greedy re-selection every 50 queries;
* ``oracle``    — adaptive with perfect cost estimates (noise = 0).

Then the adaptive strategy is swept over cost-estimate noise.

Expected shape: adaptive ≈ oracle << static < no-cache in total virtual
time; adaptive degrades toward static as estimate noise grows.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    Catalog,
    CostModel,
    MaterializationManager,
    NetworkModel,
    NimbleEngine,
    RefreshPolicy,
    RelationalSource,
    SimClock,
    SourceRegistry,
)
from repro.workloads import QueryWorkload, WorkloadSpec, make_customer_universe

TEMPLATES = [
    'WHERE <c><first_name>$f</first_name><city>$c</city></c> '
    f'IN "crm_customers", $c = "{city}" CONSTRUCT <r>$f</r>'
    for city in ("seattle", "portland", "boise", "tacoma")
] + [
    'WHERE <a><name>$n</name><balance>$b</balance></a> '
    f'IN "billing_accounts", $b > {threshold} CONSTRUCT <r>$n</r>'
    for threshold in (1000, 2500, 4000)
] + [
    'WHERE <u><fullname>$n</fullname><open_tickets>$t</open_tickets></u> '
    'IN "support_users", $t > 1 CONSTRUCT <r>$n</r>',
]

BUDGET_ROWS = 70
N_QUERIES = 400
ADAPT_EVERY = 40

BENCH_STATS = BenchStats()


def build_engine(noise: float):
    universe = make_customer_universe(200, seed=5)
    clock = SimClock()
    registry = SourceRegistry(clock)
    latencies = {"crm": 40.0, "billing": 160.0, "support": 80.0}
    for name, db in universe.as_databases().items():
        registry.register(
            RelationalSource(name, db,
                             network=NetworkModel(latency_ms=latencies[name],
                                                  per_row_ms=0.5))
        )
    catalog = Catalog(registry)
    catalog.map_relation("crm_customers", "crm", "customers")
    catalog.map_relation("billing_accounts", "billing", "accounts")
    catalog.map_relation("support_users", "support", "tickets_users")
    cost_model = CostModel(noise=noise)
    manager = MaterializationManager(
        clock, cost_model=cost_model,
        default_policy=RefreshPolicy.ttl(120_000.0),
    )
    return NimbleEngine(catalog, cost_model=cost_model, materializer=manager)


def run_strategy(strategy: str, noise: float = 0.0) -> float:
    """Total virtual milliseconds spent answering the workload."""
    engine = build_engine(noise if strategy != "oracle" else 0.0)
    manager = engine.materializer
    clock = engine.clock
    workload = QueryWorkload(
        list(TEMPLATES), WorkloadSpec(zipf_s=1.4, drift_every=100,
                                      drift_step=3, seed=17),
    )

    def fetcher(fragment):
        return engine.catalog.registry.get(fragment.source).execute(fragment)

    total = 0.0
    for index, query in enumerate(workload.draw_many(N_QUERIES)):
        if strategy in ("adaptive", "oracle") and index and index % ADAPT_EVERY == 0:
            manager.adapt(BUDGET_ROWS, fetcher)
        if strategy == "static" and index == ADAPT_EVERY:
            manager.adapt(BUDGET_ROWS, fetcher)  # once, then frozen
        before = clock.now
        BENCH_STATS.absorb(engine.query(query))
        total += clock.now - before
    return total


def run_experiment() -> tuple[list[list], list[list]]:
    BENCH_STATS.reset()
    strategies = []
    for strategy in ("no-cache", "static", "adaptive", "oracle"):
        if strategy == "no-cache":
            engine = build_engine(0.0)
            engine.materializer = None
            workload = QueryWorkload(
                list(TEMPLATES), WorkloadSpec(zipf_s=1.4, drift_every=100,
                                              drift_step=3, seed=17),
            )
            total = 0.0
            for query in workload.draw_many(N_QUERIES):
                before = engine.clock.now
                BENCH_STATS.absorb(engine.query(query))
                total += engine.clock.now - before
        else:
            total = run_strategy(strategy, noise=0.5)
        strategies.append([strategy, total, total / N_QUERIES])

    noise_rows = []
    for noise in (0.0, 0.5, 1.0, 2.0):
        total = run_strategy("adaptive", noise=noise)
        noise_rows.append([noise, total, total / N_QUERIES])
    return strategies, noise_rows


def report():
    strategies, noise_rows = run_experiment()
    print_table(
        "E2a: view-selection strategies, 400-query drifting workload "
        f"(budget {BUDGET_ROWS} rows)",
        ["strategy", "total virtual ms", "mean per query (ms)"],
        strategies,
    )
    print_table(
        "E2b: adaptive selection vs cost-estimate noise (lognormal sigma)",
        ["noise sigma", "total virtual ms", "mean per query (ms)"],
        noise_rows,
    )
    totals = {row[0]: row[1] for row in strategies}
    write_bench_json(
        "e2_view_selection",
        ["strategy", "total virtual ms", "mean per query (ms)"],
        strategies,
        headline={
            "adaptive_total_virtual_ms": totals.get("adaptive"),
            "no_cache_total_virtual_ms": totals.get("no-cache"),
        },
        extra_tables={
            "noise": (["noise sigma", "total virtual ms",
                       "mean per query (ms)"], noise_rows),
        },
        stats=BENCH_STATS,
    )
    return strategies, noise_rows


def test_e2_view_selection(benchmark):
    strategies, noise_rows = benchmark.pedantic(run_experiment, rounds=1,
                                                iterations=1)
    totals = {row[0]: row[1] for row in strategies}
    # who wins: any caching beats none; adapting beats a frozen choice
    assert totals["adaptive"] < totals["no-cache"] * 0.75
    assert totals["adaptive"] < totals["static"]
    assert totals["oracle"] <= totals["adaptive"] * 1.1
    # noise hurts (monotone-ish: extremes ordered)
    assert noise_rows[0][1] <= noise_rows[-1][1]
    report()


if __name__ == "__main__":
    report()

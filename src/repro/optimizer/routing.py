"""Shard routing: which shards answer a compiled query, and how.

The :class:`~repro.core.sharding.ShardRouter` compiles a query once on
the coordinator, then asks :func:`route` for a :class:`RoutingDecision`:

* **coordinator** — the plan cannot be scattered soundly (it reads a
  mediated view, or joins partitioned fragments that are not aligned on
  the shard key); the coordinator engine runs it whole.
* **scatter** — every shard-local execution is self-contained: shard
  outputs merge into exactly the unsharded answer.  The decision names
  the merge plan (:data:`MERGE_PARTIAL_AGGREGATE` …) and the shards to
  visit, after two pruning passes:

  - **range pruning** — a shard whose key range contradicts the query's
    predicates (via the sound :func:`repro.materialize.matching.implies`
    test) holds no qualifying rows;
  - **stats skipping** — a shard whose *observed* key column bounds
    (per-shard column statistics from batch shredding) fall entirely
    outside the predicates holds no qualifying rows either, even when
    its nominal range overlaps.

Soundness of scattering rests on two checks.  A fragment over a
partitioned source whose source-side join spans two partitioned
relations must bind the shard key of both to one variable (the join is
then shard-local by construction).  And when several *fragments* are
partitioned, they must all bind the shard key to the same query
variable and share one range vector — the engine's equi-join on that
shared variable then never needs to pair rows across shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.algebra.merge import flat_template
from repro.materialize.matching import implies
from repro.optimizer.decomposer import DecomposedQuery, FragmentUnit, ViewUnit
from repro.query import ast as qast
from repro.query.translate import template_to_construct
from repro.sources.base import Fragment
from repro.sources.sharding import (
    KeyRange,
    ShardMap,
    access_key_var,
    range_admits,
)
from repro.xmldm.values import compare_values

#: merge plans, in decreasing order of wire savings
MERGE_PARTIAL_AGGREGATE = "partial_aggregate"  # per-group states cross the wire
MERGE_TOPK = "topk"  # at most K candidate rows per shard
MERGE_DISTINCT = "distinct"  # one representative row per shard-local group
MERGE_ORDERED = "ordered_merge"  # sorted runs, k-way merged
MERGE_ROW_UNION = "row_union"  # all rows, concatenated in shard order


@dataclass(frozen=True)
class ShardPruned:
    """One shard the router decided not to visit, and why."""

    shard: int
    reason: str


@dataclass(frozen=True)
class RoutingDecision:
    """Where a compiled query runs and how its partials merge."""

    strategy: str  # "scatter" | "coordinator"
    reason: str
    merge: str = ""
    key_var: str | None = None
    shard_count: int = 0
    selected: tuple[int, ...] = ()
    pruned: tuple[ShardPruned, ...] = field(default_factory=tuple)

    @property
    def scatter(self) -> bool:
        return self.strategy == "scatter"

    def describe(self) -> str:
        """The EXPLAIN rendering, appended below the physical plan."""
        if not self.scatter:
            return f"Routing(coordinator: {self.reason})"
        key = f", key=${self.key_var}" if self.key_var else ""
        lines = [
            f"Routing(scatter: merge={self.merge}, "
            f"shards={len(self.selected)}/{self.shard_count}{key})"
        ]
        for entry in self.pruned:
            lines.append(f"  pruned shard {entry.shard}: {entry.reason}")
        return "\n".join(lines)


def merge_strategy(query: qast.Query) -> str:
    """The cheapest merge plan that is exact for this query shape.

    Flat templates (no nested element templates) render each element
    from its group's representative row alone, so shards can ship
    representatives or aggregate states instead of member rows.  ORDER
    BY forces sorted runs; ORDER BY + LIMIT over a flat aggregate-free
    template admits top-K-of-top-Ks.
    """
    template = template_to_construct(query.construct)
    flat = flat_template(template)
    has_aggregates = template.has_aggregates()
    if query.order_by:
        if query.limit is not None and flat and not has_aggregates:
            return MERGE_TOPK
        return MERGE_ORDERED
    if flat and has_aggregates:
        return MERGE_PARTIAL_AGGREGATE
    if flat:
        return MERGE_DISTINCT
    return MERGE_ROW_UNION


#: per-(shard, fragment, variable) observed key bounds, or None when
#: the shard has no statistics for the fragment's key column yet
StatsBounds = Callable[[int, Fragment, str], "tuple[Any, Any] | None"]


def _empty_range(key_range: KeyRange) -> bool:
    return (
        key_range.low is not None
        and key_range.high is not None
        and compare_values(key_range.low, key_range.high) >= 0
    )


def stats_admits(minimum: Any, maximum: Any, key_var: str,
                 conditions) -> bool:
    """Can a shard whose keys all lie in ``[minimum, maximum]`` match?

    Sound for the same reason :func:`~repro.sources.sharding.
    range_admits` is: a condition that *implies* the key falls below the
    observed minimum or above the observed maximum excludes every row
    the shard actually holds.
    """
    var = qast.Var(key_var)
    for condition in conditions:
        if implies(condition, qast.BinOp("<", var, qast.Literal(minimum))):
            return False
        if implies(condition, qast.BinOp(">", var, qast.Literal(maximum))):
            return False
    return True


def _coordinator(reason: str) -> RoutingDecision:
    return RoutingDecision("coordinator", reason)


def route(
    decomposed: DecomposedQuery,
    shard_maps: Mapping[str, ShardMap],
    stats_bounds: StatsBounds | None = None,
) -> RoutingDecision:
    """Decide where ``decomposed`` runs against ``shard_maps``."""
    partitioned: list[tuple[FragmentUnit, ShardMap, str | None]] = []
    has_view = False
    for unit in decomposed.units:
        if isinstance(unit, ViewUnit):
            has_view = True
            continue
        shard_map = shard_maps.get(unit.source.name)
        if shard_map is None:
            continue
        split_accesses = [
            access for access in unit.fragment.accesses
            if shard_map.partitions(access.relation)
        ]
        if not split_accesses:
            continue  # only broadcast relations: every shard is complete
        bound_vars = {
            access_key_var(access, shard_map.key)
            for access in split_accesses
        }
        if len(split_accesses) > 1 and (None in bound_vars
                                        or len(bound_vars) > 1):
            return _coordinator(
                f"source-side join on {unit.source.name!r} is not aligned "
                "on the shard key"
            )
        key_var = (
            next(iter(bound_vars)) if len(bound_vars) == 1 else None
        )
        partitioned.append((unit, shard_map, key_var))
    if not partitioned:
        return _coordinator("no partitioned fragments")
    if has_view:
        # a view sub-query may aggregate or group across the partition,
        # which a per-shard recursive execution would compute wrongly
        return _coordinator("plan reads a mediated view")
    ranges = partitioned[0][1].ranges
    if any(entry[1].ranges != ranges for entry in partitioned[1:]):
        return _coordinator("partitioned sources are not co-partitioned")
    if len(partitioned) > 1:
        key_vars = {entry[2] for entry in partitioned}
        if None in key_vars or len(key_vars) > 1:
            return _coordinator(
                "partitioned fragments do not join on the shard key"
            )
    key_var = partitioned[0][2]
    conditions: list[qast.Expr] = list(decomposed.residual_conditions)
    if key_var is not None:
        for unit, _, unit_key_var in partitioned:
            if unit_key_var == key_var:
                conditions.extend(unit.fragment.conditions)
    selected: list[int] = []
    pruned: list[ShardPruned] = []
    for index, key_range in enumerate(ranges):
        if _empty_range(key_range):
            pruned.append(ShardPruned(index, "empty key range"))
            continue
        if key_var is not None and not range_admits(
            key_range, key_var, conditions
        ):
            pruned.append(ShardPruned(
                index,
                f"range {key_range.describe()} contradicts predicates",
            ))
            continue
        if key_var is not None and stats_bounds is not None:
            skipped = False
            for unit, _, unit_key_var in partitioned:
                if unit_key_var != key_var:
                    continue
                bounds = stats_bounds(index, unit.fragment, key_var)
                if bounds is not None and not stats_admits(
                    bounds[0], bounds[1], key_var, conditions
                ):
                    pruned.append(ShardPruned(
                        index,
                        f"stats [{bounds[0]!r}, {bounds[1]!r}] "
                        "contradict predicates",
                    ))
                    skipped = True
                    break
            if skipped:
                continue
        selected.append(index)
    return RoutingDecision(
        "scatter",
        f"{len(partitioned)} partitioned fragment(s)",
        merge=merge_strategy(decomposed.bound.query),
        key_var=key_var,
        shard_count=len(ranges),
        selected=tuple(selected),
        pruned=tuple(pruned),
    )

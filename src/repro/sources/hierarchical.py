"""Wrapper for hierarchical (directory-style) sources.

Models the LDAP/registry class of legacy systems the paper's data model
was shaped to accommodate: entries live in a tree of named nodes, each
entry carries a flat attribute map, and the native query capability is
subtree search with attribute *equality* filters only — a deliberately
weaker profile than the relational wrapper, so the optimizer has real
capability variance to plan around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import CapabilityError
from repro.query import ast as qast
from repro.sources.base import CapabilityProfile, DataSource, Fragment, NetworkModel
from repro.simtime import SimClock
from repro.xmldm.schema import RecordType
from repro.xmldm.values import Record


@dataclass
class DirectoryEntry:
    """One node of the directory tree."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["DirectoryEntry"] = field(default_factory=list)

    def add_child(self, name: str, **attributes: Any) -> "DirectoryEntry":
        child = DirectoryEntry(name, dict(attributes))
        self.children.append(child)
        return child

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "DirectoryEntry"]]:
        """Yield (path, entry) pairs for this subtree."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path)


class HierarchicalSource(DataSource):
    """A directory-tree source with equality-only native filtering."""

    capabilities = CapabilityProfile(
        selections=True,
        projections=True,
        joins=False,
        condition_ops=frozenset({"=", "AND"}),
    )

    def __init__(
        self,
        name: str,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
    ):
        super().__init__(name, clock, network)
        #: exported relation name -> (root entry, entry tag)
        self._trees: dict[str, tuple[DirectoryEntry, str]] = {}

    def add_tree(self, relation: str, root: DirectoryEntry, entry_tag: str) -> None:
        """Export the entries of ``root`` tagged ``entry_tag`` as a relation.

        Every entry in the subtree whose name equals ``entry_tag`` becomes
        one record (attributes plus ``path``/``name`` pseudo-fields).
        """
        self._trees[relation] = (root, entry_tag)

    def relations(self) -> dict[str, RecordType]:
        return {name: RecordType(name) for name in self._trees}

    def cardinality(self, relation: str) -> int:
        if relation not in self._trees:
            return 0
        root, entry_tag = self._trees[relation]
        return sum(1 for _, entry in root.walk() if entry.name == entry_tag)

    def _entries(self, relation: str) -> Iterator[tuple[str, DirectoryEntry]]:
        root, entry_tag = self._trees[relation]
        for path, entry in root.walk():
            if entry.name == entry_tag:
                yield path, entry

    def _fetch_all(self, relation: str):
        if relation not in self._trees:
            raise CapabilityError(
                f"source {self.name!r} exports no tree {relation!r}"
            )
        for path, entry in self._entries(relation):
            values = dict(entry.attributes)
            values["path"] = path
            values["name"] = entry.name
            yield Record(values)

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        if len(fragment.accesses) != 1:
            raise CapabilityError("hierarchical fragments access one tree")
        access = fragment.accesses[0]
        if access.relation not in self._trees:
            raise CapabilityError(
                f"source {self.name!r} exports no tree {access.relation!r}"
            )
        bindings = _pattern_bindings(access.pattern)
        filters = []
        for condition in fragment.conditions:
            var, wanted = _equality_filter(condition, params)
            if var not in bindings:
                raise CapabilityError(
                    f"condition variable ${var} is not bound by the pattern"
                )
            filters.append((bindings[var], wanted))
        for path, entry in self._entries(access.relation):
            values = dict(entry.attributes)
            values["path"] = path
            values["name"] = entry.name
            if any(values.get(attr) != wanted for attr, wanted in filters):
                continue
            record: dict[str, Any] = {}
            satisfied = True
            for var, attr in bindings.items():
                if attr in values:
                    record[var] = values[attr]
                else:
                    satisfied = False
                    break
            if satisfied:
                yield Record(record)


def _pattern_bindings(pattern) -> dict[str, str]:
    """var -> attribute name bindings from a flat access pattern."""
    bindings: dict[str, str] = {}
    for attribute in pattern.attributes:
        if attribute.var is not None:
            bindings[attribute.var] = attribute.name
    for child in pattern.children:
        if child.children or child.attributes:
            raise CapabilityError("hierarchical patterns must be flat")
        if child.text_var is not None:
            bindings[child.text_var] = child.tag
    return bindings


def _equality_filter(
    condition: qast.Expr, params: dict[str, Any]
) -> tuple[str, Any]:
    """Decompose ``$var = literal`` into (attribute, value) — via bindings.

    The decomposer only pushes conditions the capability profile admits,
    so by the time a condition reaches the wrapper it is an equality
    between a bound variable and a literal (or a parameter).
    """
    if not isinstance(condition, qast.BinOp) or condition.op != "=":
        raise CapabilityError(f"hierarchical source accepts only equality, got {condition}")
    left, right = condition.left, condition.right
    if isinstance(left, qast.Var) and isinstance(right, qast.Literal):
        return left.name, right.value
    if isinstance(right, qast.Var) and isinstance(left, qast.Literal):
        return right.name, left.value
    raise CapabilityError(f"unsupported hierarchical condition {condition}")

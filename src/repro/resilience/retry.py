"""Retry with exponential backoff over the virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
import random


@dataclass
class RetryPolicy:
    """How many times to retry a failed source call, and how to wait.

    Backoff after the ``attempt``-th failure (0-based) is
    ``base_backoff_ms * multiplier ** attempt`` capped at
    ``max_backoff_ms``, scaled by a deterministic jitter of up to
    ``±jitter``.  The executor charges the wait to the virtual clock, so
    retried queries *pay* for their patience in the latency benchmarks.

    ``jitter_mode`` selects how the jitter stream is drawn:

    * ``"equal"`` (default) — one sequential RNG seeded by ``seed``
      shared by every caller of this policy instance.  This is the
      original behaviour: draws depend on call order, so two sources
      retrying through the same policy at the same time receive
      *correlated* waits and their retry storms stay synchronized.
    * ``"decorrelated"`` — each draw is seeded independently from
      ``(seed, source, attempt)``, so simultaneous admissions against
      different sources (or different attempts) spread out
      deterministically regardless of call order.
    """

    max_attempts: int = 3
    base_backoff_ms: float = 50.0
    multiplier: float = 2.0
    max_backoff_ms: float = 5_000.0
    jitter: float = 0.1
    seed: int = 23
    jitter_mode: str = "equal"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.jitter_mode not in ("equal", "decorrelated"):
            raise ValueError("jitter_mode must be 'equal' or 'decorrelated'")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the jitter RNG (fresh deterministic replay)."""
        self._rng = random.Random(self.seed)

    def backoff_ms(self, attempt: int, source: str | None = None) -> float:
        """Wait before retry number ``attempt + 1`` (attempt is 0-based)."""
        raw = min(
            self.base_backoff_ms * self.multiplier ** attempt,
            self.max_backoff_ms,
        )
        if self.jitter:
            if self.jitter_mode == "decorrelated":
                # string-seeded: deterministic per (seed, source, attempt)
                # triple, independent of draw order across callers
                draw = random.Random(
                    f"{self.seed}:{source or ''}:{attempt}"
                ).uniform(-self.jitter, self.jitter)
            else:
                draw = self._rng.uniform(-self.jitter, self.jitter)
            raw *= 1.0 + draw
        return raw

"""The data-mining phase: interactive profiling before extraction.

Section 3.2's "human-centered tools for interactively analyzing data,
testing transforms, resolving ambiguities, looking for duplicates and
anomalies, finding legacy data encoded in text fields".  A data steward
pointed at the freshly-acquired billing system would run exactly this
session.

Run:  python examples/data_mining_phase.py
"""

from repro.cleaning import (
    FieldRule,
    NormalizerRegistry,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.mining import (
    duplicate_report,
    find_anomalies,
    find_legacy_codes,
    profile_dataset,
)
from repro.workloads import make_customer_universe


def main() -> None:
    universe = make_customer_universe(150, overlap=0.6, dirt=0.25,
                                      duplicate_rate=0.15, seed=31)
    billing = universe.records["billing"]
    print(f"profiling the acquired billing system: {len(billing)} accounts\n")

    print("== field profiles ==")
    print(f"  {'field':<10} {'fill':>6} {'distinct':>9}  top formats")
    for profile in profile_dataset(billing):
        formats = ", ".join(
            f"{pattern}({count})" for pattern, count in profile.top_patterns
        )
        print(f"  {profile.name:<10} {profile.fill_rate:>5.0%} "
              f"{profile.distinct:>9}  {formats[:50]}")

    print("\n== anomalies worth a human look ==")
    for anomaly in find_anomalies(billing, min_fill_rate=0.95):
        print(f"  [{anomaly.kind:<14}] {anomaly.field}: {anomaly.detail}")

    print("\n== legacy identifiers hiding in free text ==")
    findings = find_legacy_codes(billing, "notes")
    print(f"  {len(findings)} legacy account codes found in 'notes'")
    for index, code in findings[:5]:
        print(f"    record {billing[index]['id']}: {code!r}")

    print("\n== testing a normalization transform interactively ==")
    registry = NormalizerRegistry()
    sample = billing[0]["name"]
    print(f"  raw:        {sample!r}")
    print(f"  name-norm:  {registry.apply('name', sample)!r}")

    print("\n== candidate duplicates inside billing (merge/purge) ==")
    matcher = RecordMatcher(
        [FieldRule("name", metric=jaro_winkler, normalizer=registry.get("name"))],
        match_threshold=0.97,
        possible_threshold=0.82,
    )
    report = duplicate_report(billing, matcher, key_field="name",
                              window=9, limit=8)
    print(f"  {'score':>6}  candidate pair")
    for i, j, score in report:
        print(f"  {score:>6.3f}  {billing[i]['name']!r} ~ {billing[j]['name']!r}")
    print("\nnext step: feed these decisions into a CleaningFlow in MINING")
    print("mode (see examples/customer_360.py) so extraction can replay them.")


if __name__ == "__main__":
    main()

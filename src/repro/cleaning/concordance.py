"""The concordance database: remembered match decisions.

"One of the features we have found essential in most practical
situations is a separate data store that is created to serve to match
records from two or more different original data sources.  We call this
a concordance database" (section 3.2).  Decisions — automatic or human —
are recorded once and replayed during extraction, so "past human
decisions are reapplied via a concordance database".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.cleaning.matchers import MatchDecision
from repro.errors import CleaningError

#: A record is globally identified by (source name, record id).
RecordRef = tuple[str, str]


@dataclass(frozen=True)
class Decision:
    """One recorded determination about a record pair."""

    ref_a: RecordRef
    ref_b: RecordRef
    decision: MatchDecision
    decided_by: str  # 'auto' or a human reviewer's name
    score: float = 0.0
    at_ms: float = 0.0

    def key(self) -> tuple[RecordRef, RecordRef]:
        return _pair_key(self.ref_a, self.ref_b)


def _pair_key(a: RecordRef, b: RecordRef) -> tuple[RecordRef, RecordRef]:
    return (a, b) if a <= b else (b, a)


class ConcordanceDB:
    """Decision store with lookup, recording, persistence and stats."""

    def __init__(self) -> None:
        self._decisions: dict[tuple[RecordRef, RecordRef], Decision] = {}
        self.replays = 0

    def record(self, decision: Decision, overwrite: bool = False) -> None:
        key = decision.key()
        if key in self._decisions and not overwrite:
            existing = self._decisions[key]
            if existing.decision != decision.decision:
                raise CleaningError(
                    f"conflicting concordance decision for {key}: "
                    f"{existing.decision.value} vs {decision.decision.value}"
                )
            return
        self._decisions[key] = decision

    def lookup(self, a: RecordRef, b: RecordRef) -> Decision | None:
        """Return the remembered decision for a pair, counting a replay."""
        decision = self._decisions.get(_pair_key(a, b))
        if decision is not None:
            self.replays += 1
        return decision

    def matches_of(self, ref: RecordRef) -> list[RecordRef]:
        """All records recorded as matching ``ref``."""
        partners = []
        for (a, b), decision in self._decisions.items():
            if decision.decision is not MatchDecision.MATCH:
                continue
            if a == ref:
                partners.append(b)
            elif b == ref:
                partners.append(a)
        return partners

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions.values())

    def counts(self) -> dict[str, int]:
        tally = {d.value: 0 for d in MatchDecision}
        for decision in self._decisions.values():
            tally[decision.decision.value] += 1
        return tally

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write decisions to a JSON file."""
        payload = [
            {
                "ref_a": list(d.ref_a),
                "ref_b": list(d.ref_b),
                "decision": d.decision.value,
                "decided_by": d.decided_by,
                "score": d.score,
                "at_ms": d.at_ms,
            }
            for d in self._decisions.values()
        ]
        Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ConcordanceDB":
        db = cls()
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        for item in payload:
            db.record(
                Decision(
                    ref_a=(item["ref_a"][0], item["ref_a"][1]),
                    ref_b=(item["ref_b"][0], item["ref_b"][1]),
                    decision=MatchDecision(item["decision"]),
                    decided_by=item["decided_by"],
                    score=item.get("score", 0.0),
                    at_ms=item.get("at_ms", 0.0),
                )
            )
        return db

"""Compilation of XML-QL condition expressions to Python closures.

XML content is text, so comparisons coerce sympathetically: when one
side is a number and the other a numeric-looking string, the comparison
is numeric.  Node values atomize to their text content first.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.errors import BindingError
from repro.algebra.tuples import BindingTuple
from repro.query import ast
from repro.xmldm.values import NULL, Null, atomize, compare_values

ValueFn = Callable[[BindingTuple], Any]
PredicateFn = Callable[[BindingTuple], bool]


def flex_compare(a: Any, b: Any) -> int | None:
    """Comparison with node atomization and numeric string coercion.

    Returns None when either side is NULL (condition then fails), else
    -1/0/1.
    """
    a = atomize(a)
    b = atomize(b)
    if isinstance(a, Null) or isinstance(b, Null) or a is None or b is None:
        return None
    if isinstance(a, (int, float)) and isinstance(b, str):
        try:
            b = float(b)
        except ValueError:
            pass
    elif isinstance(b, (int, float)) and isinstance(a, str):
        try:
            a = float(a)
        except ValueError:
            pass
    return compare_values(a, b)


def _like(value: Any, pattern: Any) -> bool:
    value = atomize(value)
    pattern = atomize(pattern)
    if not isinstance(value, str) or not isinstance(pattern, str):
        return False
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


def _as_number(value: Any) -> float | None:
    value = atomize(value)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _as_text(value: Any) -> str:
    value = atomize(value)
    if isinstance(value, Null) or value is None:
        return ""
    return str(value)


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "text": lambda v: _as_text(v),
    "number": lambda v: _as_number(v),
    "length": lambda v: len(_as_text(v)),
    "upper": lambda v: _as_text(v).upper(),
    "lower": lambda v: _as_text(v).lower(),
    "trim": lambda v: _as_text(v).strip(),
    "contains": lambda v, s: _as_text(s) in _as_text(v),
    "starts-with": lambda v, s: _as_text(v).startswith(_as_text(s)),
    "ends-with": lambda v, s: _as_text(v).endswith(_as_text(s)),
}


def compile_value(expr: ast.Expr) -> ValueFn:
    """Compile an expression to a function over binding tuples."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Var):
        name = expr.name
        return lambda row: row.get(name, NULL)
    if isinstance(expr, ast.Not):
        inner = compile_predicate(expr.operand)
        return lambda row: not inner(row)
    if isinstance(expr, ast.Call):
        function = _FUNCTIONS.get(expr.name)
        if function is None:
            raise BindingError(f"unknown function {expr.name!r}")
        arg_fns = [compile_value(arg) for arg in expr.args]
        return lambda row: function(*(fn(row) for fn in arg_fns))
    if isinstance(expr, ast.BinOp):
        return _compile_binop_value(expr)
    raise BindingError(f"cannot compile expression {expr!r}")


def _compile_binop_value(expr: ast.BinOp) -> ValueFn:
    op = expr.op
    if op in ("AND", "OR"):
        left = compile_predicate(expr.left)
        right = compile_predicate(expr.right)
        if op == "AND":
            return lambda row: left(row) and right(row)
        return lambda row: left(row) or right(row)
    left_fn = compile_value(expr.left)
    right_fn = compile_value(expr.right)
    if op in ("=", "!=", "<", "<=", ">", ">="):

        def comparison(row: BindingTuple) -> bool:
            result = flex_compare(left_fn(row), right_fn(row))
            if result is None:
                return False
            return {
                "=": result == 0,
                "!=": result != 0,
                "<": result < 0,
                "<=": result <= 0,
                ">": result > 0,
                ">=": result >= 0,
            }[op]

        return comparison
    if op == "LIKE":
        return lambda row: _like(left_fn(row), right_fn(row))
    if op in ("+", "-", "*", "/", "%"):

        def arithmetic(row: BindingTuple) -> Any:
            a = _as_number(left_fn(row))
            b = _as_number(right_fn(row))
            if a is None or b is None:
                return NULL
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                return NULL if b == 0 else a / b
            return NULL if b == 0 else a % b

        return arithmetic
    raise BindingError(f"unknown operator {op!r}")


def compile_predicate(expr: ast.Expr) -> PredicateFn:
    """Compile an expression as a boolean condition."""
    value_fn = compile_value(expr)

    def predicate(row: BindingTuple) -> bool:
        result = value_fn(row)
        if isinstance(result, Null) or result is None:
            return False
        return bool(result)

    return predicate


def compile_sort_key(expr: ast.Expr) -> ValueFn:
    """Compile an ORDER BY key: atomize and numerically coerce text."""
    value_fn = compile_value(expr)

    def key(row: BindingTuple) -> Any:
        value = atomize(value_fn(row))
        number = _as_number(value)
        return value if number is None else number

    return key

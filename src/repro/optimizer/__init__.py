"""The query optimizer: capability-aware decomposition and costing.

Section 4 of the paper requires "an internal query optimizer that can
address the varying query capabilities of different data sources".  The
optimizer here:

* decomposes a bound XML-QL query into per-source fragments, pushing
  the maximal selections each source's capability profile admits
  (:mod:`repro.optimizer.decomposer`);
* estimates fragment costs from catalog statistics and each wrapper's
  network model — with an explicit uncertainty knob, since the paper
  stresses "we do not have good cost estimates for querying over remote
  data sources" (:mod:`repro.optimizer.costs`);
* orders joins greedily by estimated cardinality and places dependent
  (parameterized) fragments after their input producers
  (:mod:`repro.optimizer.planner`).
"""

from repro.optimizer.costs import CostModel, FragmentEstimate
from repro.optimizer.decomposer import (
    DecomposedQuery,
    FragmentUnit,
    ViewUnit,
    decompose,
)
from repro.optimizer.planner import PlanBuilder

from repro.optimizer.routing import RoutingDecision, merge_strategy, route

__all__ = [
    "CostModel",
    "DecomposedQuery",
    "FragmentEstimate",
    "FragmentUnit",
    "PlanBuilder",
    "RoutingDecision",
    "ViewUnit",
    "decompose",
    "merge_strategy",
    "route",
]

"""E1 — warehousing vs virtual integration vs the compound architecture.

Paper claim (section 3.3): virtual integration gives fresh data but
"we may pay a considerable performance penalty because we need to
contact the sources for every query"; warehousing is fast but "the data
may not be fresh"; Nimble's answer is materializing views over the
mediated schema with on-demand refresh.

The bench runs a fixed customer-360 query mix against three-source
deployments while sweeping remote latency, under three strategies:

* ``virtual``   — every query contacts the sources;
* ``warehouse`` — fragments materialized once, never refreshed
  (classical warehouse: fast, increasingly stale);
* ``compound``  — fragments materialized with a TTL and refreshed on
  demand (the paper's architecture).

Expected shape: virtual latency grows linearly with remote latency
while the other two stay flat; warehouse staleness grows without bound
while compound staleness is capped by the TTL; compound pays a small
refresh overhead over warehouse.  Absolute numbers are simulation
(virtual-clock) milliseconds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import (
    Catalog,
    MaterializationManager,
    NetworkModel,
    NimbleEngine,
    RefreshPolicy,
    RelationalSource,
    SimClock,
    SourceRegistry,
)
from repro.workloads import make_customer_universe

QUERIES = [
    'WHERE <c><first_name>$f</first_name><city>$c</city></c> '
    'IN "crm_customers", $c = "seattle" CONSTRUCT <r>$f</r>',
    'WHERE <a><name>$n</name><balance>$b</balance></a> '
    'IN "billing_accounts", $b > 1000 CONSTRUCT <r>$n</r>',
    'WHERE <u><fullname>$n</fullname><open_tickets>$t</open_tickets></u> '
    'IN "support_users", $t > 2 CONSTRUCT <r>$n</r>',
]

TTL_MS = 5_000.0
THINK_TIME_MS = 400.0
N_QUERIES = 60

BENCH_STATS = BenchStats()


def build_engine(latency_ms: float, strategy: str):
    universe = make_customer_universe(150, seed=8)
    clock = SimClock()
    registry = SourceRegistry(clock)
    for name, db in universe.as_databases().items():
        registry.register(
            RelationalSource(name, db,
                             network=NetworkModel(latency_ms=latency_ms,
                                                  per_row_ms=0.2))
        )
    catalog = Catalog(registry)
    catalog.map_relation("crm_customers", "crm", "customers")
    catalog.map_relation("billing_accounts", "billing", "accounts")
    catalog.map_relation("support_users", "support", "tickets_users")
    manager = None
    if strategy != "virtual":
        manager = MaterializationManager(clock)
    engine = NimbleEngine(catalog, materializer=manager)
    if strategy == "warehouse":
        for query in QUERIES:
            engine.materialize_query_fragments(query, RefreshPolicy.manual())
    elif strategy == "compound":
        for query in QUERIES:
            engine.materialize_query_fragments(query, RefreshPolicy.ttl(TTL_MS))
    return engine, manager


def run_strategy(latency_ms: float, strategy: str) -> dict:
    engine, manager = build_engine(latency_ms, strategy)
    clock = engine.clock
    latencies: list[float] = []
    staleness: list[float] = []
    for i in range(N_QUERIES):
        clock.advance(THINK_TIME_MS)
        if strategy == "compound" and manager is not None:
            # the refresh agent wakes between queries (refresh-on-demand)
            manager.refresh_stale(
                lambda fragment: engine.catalog.registry.get(
                    fragment.source
                ).execute(fragment)
            )
        query = QUERIES[i % len(QUERIES)]
        before = clock.now
        BENCH_STATS.absorb(engine.query(query))
        latencies.append(clock.now - before)
        if manager is not None:
            ages = [clock.now - view.loaded_at for view in manager.store]
            staleness.append(max(ages) if ages else 0.0)
        else:
            staleness.append(0.0)
    return {
        "mean_latency_ms": sum(latencies) / len(latencies),
        "max_staleness_ms": max(staleness),
    }


def run_experiment() -> list[list]:
    BENCH_STATS.reset()
    rows = []
    for latency in (0.0, 50.0, 200.0):
        for strategy in ("virtual", "warehouse", "compound"):
            outcome = run_strategy(latency, strategy)
            rows.append([
                f"{latency:.0f}",
                strategy,
                outcome["mean_latency_ms"],
                outcome["max_staleness_ms"],
            ])
    return rows


def report() -> list[list]:
    rows = run_experiment()
    print_table(
        "E1: virtual vs warehouse vs compound (paper section 3.3)",
        ["remote latency (ms)", "strategy", "mean query latency (ms)",
         "max data staleness (ms)"],
        rows,
    )
    write_bench_json(
        "e1_virtual_vs_materialized",
        ["remote latency (ms)", "strategy", "mean query latency (ms)",
         "max data staleness (ms)"],
        rows,
        headline={"best_mean_query_latency_ms": min(row[2] for row in rows)},
        stats=BENCH_STATS,
    )
    return rows


def test_e1_virtual_vs_materialized(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_key = {(row[0], row[1]): row for row in rows}
    for latency in ("50", "200"):
        virtual = by_key[(latency, "virtual")]
        warehouse = by_key[(latency, "warehouse")]
        compound = by_key[(latency, "compound")]
        # who wins: materialized strategies dominate virtual on latency
        assert warehouse[2] < virtual[2] / 5
        assert compound[2] < virtual[2] / 2
        # freshness: compound staleness is bounded by the TTL+refresh
        # cadence; the warehouse only grows staler
        assert compound[3] <= TTL_MS + THINK_TIME_MS
        assert warehouse[3] > compound[3]
    benchmark.extra_info["rows"] = [[str(c) for c in row] for row in rows]
    report()


if __name__ == "__main__":
    report()

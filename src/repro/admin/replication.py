"""Offline replication: scheduled copies of source data, with transforms.

A :class:`ReplicationJob` names a fragment of one source, an optional
record transform (the "offline data manipulation" hook — e.g. a
normalization from :mod:`repro.cleaning`), a destination table in a
local relational store, and a period.  The :class:`DataAdministrator`
runs due jobs against the virtual clock; the replicated tables can then
be registered as just another :class:`RelationalSource`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError, SourceUnavailableError
from repro.simtime import SimClock
from repro.sources.base import DataSource, Fragment
from repro.sql.database import Database
from repro.sql.schema import Column, TableSchema
from repro.sql.types import SQLType
from repro.xmldm.values import Null, Record

Transform = Callable[[Record], "Record | None"]

_MODEL_TO_SQL = {
    "number": SQLType.REAL,
    "string": SQLType.TEXT,
    "boolean": SQLType.BOOLEAN,
    "date": SQLType.DATE,
    "datetime": SQLType.TEXT,
    "null": SQLType.TEXT,
}


@dataclass
class ReplicationJob:
    """One scheduled copy: fragment -> (transform) -> local table."""

    name: str
    source: DataSource
    fragment: Fragment
    target_table: str
    period_ms: float
    transform: Transform | None = None
    last_run_ms: float = float("-inf")
    runs: int = 0
    rows_replicated: int = 0
    failures: int = 0

    def due(self, now_ms: float) -> bool:
        return now_ms - self.last_run_ms >= self.period_ms


class DataAdministrator:
    """Runs replication jobs into one local relational store."""

    def __init__(self, clock: SimClock, store: Database | None = None):
        self.clock = clock
        self.store = store or Database("replica_store")
        self.jobs: dict[str, ReplicationJob] = {}

    def add_job(
        self,
        name: str,
        source: DataSource,
        fragment: Fragment,
        target_table: str,
        period_ms: float,
        transform: Transform | None = None,
    ) -> ReplicationJob:
        if name in self.jobs:
            raise ReproError(f"replication job {name!r} already exists")
        job = ReplicationJob(name, source, fragment, target_table, period_ms,
                             transform)
        self.jobs[name] = job
        return job

    def run_job(self, name: str) -> int:
        """Run one job now; returns rows written (0 on source outage)."""
        job = self.jobs.get(name)
        if job is None:
            raise ReproError(f"unknown replication job {name!r}")
        job.last_run_ms = self.clock.now
        try:
            records = job.source.execute(job.fragment)
        except SourceUnavailableError:
            job.failures += 1
            return 0
        if job.transform is not None:
            transformed = []
            for record in records:
                result = job.transform(record)
                if result is not None:  # None = filtered out offline
                    transformed.append(result)
            records = transformed
        self._load(job.target_table, records)
        job.runs += 1
        job.rows_replicated += len(records)
        return len(records)

    def run_due(self) -> dict[str, int]:
        """Run every due job; returns job name -> rows written."""
        outcome = {}
        for name, job in self.jobs.items():
            if job.due(self.clock.now):
                outcome[name] = self.run_job(name)
        return outcome

    # -- degraded reads ------------------------------------------------------

    def replica_records(self, job_name: str) -> list[Record] | None:
        """The replica table of one job, as records keyed like the source.

        Returns None when the job has never produced a table (so a
        fallback lookup can keep searching); values round-trip through
        the local SQL store, so numeric fields come back as floats.
        """
        job = self.jobs.get(job_name)
        if job is None:
            raise ReproError(f"unknown replication job {job_name!r}")
        if job.target_table not in self.store.tables:
            return None
        table = self.store.table(job.target_table)
        fields = [column.name for column in table.schema.columns]
        return [
            Record({
                name: (Null() if value is None else value)
                for name, value in zip(fields, row)
            })
            for _, row in table.scan()
        ]

    def register_fallbacks(self, registry) -> int:
        """Offer every job's replica table as a degraded-read fallback.

        ``registry`` is a :class:`repro.resilience.fallback.FallbackRegistry`
        (duck-typed to avoid the import cycle through the source layer);
        returns the number of jobs registered.
        """
        for job in self.jobs.values():
            registry.register(
                job.fragment,
                lambda name=job.name: self.replica_records(name),
            )
        return len(self.jobs)

    # -- loading ------------------------------------------------------------

    def _load(self, table_name: str, records: list[Record]) -> None:
        """(Re)load records into the local table, inferring a schema."""
        if not records:
            if table_name in self.store.tables:
                self.store.table(table_name).truncate()
            return
        fields = list(records[0].fields)
        if table_name not in self.store.tables:
            columns = tuple(
                Column(name, _infer_type(records, name)) for name in fields
            )
            self.store.create_table(TableSchema(table_name, columns))
        table = self.store.table(table_name)
        table.truncate()
        for record in records:
            table.insert(
                [_to_sql_value(record.get(name)) for name in fields]
            )


def _infer_type(records: list[Record], field_name: str) -> SQLType:
    from repro.xmldm.values import typename

    for record in records:
        value = record.get(field_name)
        if value is None or isinstance(value, Null):
            continue
        return _MODEL_TO_SQL.get(typename(value), SQLType.TEXT)
    return SQLType.TEXT


def _to_sql_value(value: Any) -> Any:
    if value is None or isinstance(value, Null):
        return None
    return value

"""Resilience: fault injection, retries, breakers, degraded reads.

The paper observes that with enough sources "the probability that they
are all available simultaneously is nearly zero" (section 3.4) and
answers with partial results.  This package supplies the machinery in
front of that last resort:

* :class:`FaultModel` — seeded per-call transient faults (failures,
  slow calls, mid-stream drops) charged to the virtual clock;
* :class:`RetryPolicy` — bounded retries with deterministic
  exponential backoff;
* :class:`CircuitBreaker` — per-source closed/open/half-open gate that
  fails fast under sustained failure;
* :class:`ResiliencePolicy` / :class:`ResilientExecutor` — the call
  path combining the above with per-call and per-query deadlines;
* :class:`FallbackRegistry` — replica fragments served as degraded
  reads when everything else has given up;
* :class:`AdmissionController` / :class:`LoadShedder` /
  :class:`HedgePolicy` — overload protection *of the mediator itself*:
  priority admission control at the front door, an SLO-error-budget
  brownout ladder (stop hedging -> serve stale -> shed optional lenses
  -> reject low priorities), and adaptive p95 hedged fetches.

The engine's ladder per failing fragment: retry -> breaker fail-fast ->
stale materialized fragment -> stale cached fragment -> registered
replica -> SKIP (annotated).
"""

from repro.resilience.admission import (
    Admission,
    AdmissionController,
    Priority,
)
from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.executor import ResiliencePolicy, ResilientExecutor
from repro.resilience.fallback import FallbackRegistry
from repro.resilience.faults import FaultModel
from repro.resilience.overload import (
    BrownoutLevel,
    HedgePolicy,
    LoadShedder,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "Admission",
    "AdmissionController",
    "BreakerConfig",
    "BreakerState",
    "BrownoutLevel",
    "CircuitBreaker",
    "FallbackRegistry",
    "FaultModel",
    "HedgePolicy",
    "LoadShedder",
    "Priority",
    "ResiliencePolicy",
    "ResilientExecutor",
    "RetryPolicy",
]

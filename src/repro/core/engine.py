"""The integration engine: end-to-end XML-QL query service."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.core.partial import Completeness, PartialResultPolicy
from repro.errors import MediationError, SourceUnavailableError
from repro.materialize.manager import MaterializationManager
from repro.mediator.catalog import Catalog
from repro.mediator.schema import ViewDef
from repro.optimizer.costs import CostModel
from repro.optimizer.decomposer import FragmentUnit, decompose
from repro.optimizer.planner import PlanBuilder
from repro.query import ast as qast
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.simtime import SimClock
from repro.sources.base import Fragment
from repro.xmldm.nodes import Element
from repro.xmldm.values import Record


@dataclass
class EngineStats:
    """Per-query execution accounting."""

    elapsed_virtual_ms: float = 0.0
    elapsed_wall_ms: float = 0.0
    fragments_executed: int = 0
    fragments_from_cache: int = 0
    fragments_skipped: int = 0
    rows_transferred: int = 0
    remote_calls: int = 0
    plan_text: str = ""


@dataclass
class QueryResult:
    """What a query returns: elements, completeness, accounting."""

    elements: list[Element]
    completeness: Completeness
    stats: EngineStats

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def first(self) -> Element | None:
        return self.elements[0] if self.elements else None


class _ExecutionContext:
    """One query execution: policy, completeness, view memo, accounting."""

    def __init__(self, engine: "NimbleEngine", policy: PartialResultPolicy,
                 required_sources: frozenset[str]):
        self.engine = engine
        self.policy = policy
        self.required_sources = required_sources
        self.completeness = Completeness()
        self.stats = EngineStats()
        self._view_memo: dict[str, list[Element]] = {}

    # -- the two calls FragmentScan / view scans make ------------------------

    def fetch_fragment(
        self, unit: FragmentUnit, params: dict[str, Any] | None = None
    ) -> list[Record]:
        engine = self.engine
        fragment = unit.fragment
        if params is None and engine.materializer is not None:
            served = engine.materializer.serve(fragment)
            if served is not None:
                self.stats.fragments_from_cache += 1
                return served
        started = engine.clock.now
        try:
            records = unit.source.execute(fragment, params)
        except SourceUnavailableError:
            if self.policy is PartialResultPolicy.FAIL:
                raise
            if (
                self.policy is PartialResultPolicy.REQUIRE
                and unit.source.name in self.required_sources
            ):
                raise
            self.completeness.record_skip(unit.source.name)
            self.stats.fragments_skipped += 1
            return []
        cost = engine.clock.now - started
        self.stats.fragments_executed += 1
        self.stats.remote_calls += 1
        self.stats.rows_transferred += len(records)
        if engine.materializer is not None and params is None:
            engine.materializer.record_remote(fragment, unit.source, cost, len(records))
        return records

    def fetch_view(self, view: ViewDef) -> list[Element]:
        if view.name in self._view_memo:
            return self._view_memo[view.name]
        if self.engine.materializer is not None:
            served = self.engine.materializer.serve_view(view.name)
            if served is not None:
                self.stats.fragments_from_cache += 1
                self._view_memo[view.name] = served
                return served
        result = self.engine._execute(view.query, self.policy,
                                      self.required_sources, parent=self)
        self._view_memo[view.name] = result.elements
        return result.elements


class NimbleEngine:
    """The query service over a catalog of sources and mediated schemas.

    >>> engine = NimbleEngine(catalog)                      # doctest: +SKIP
    >>> result = engine.query('WHERE ... CONSTRUCT ...')    # doctest: +SKIP
    >>> result.completeness.complete                        # doctest: +SKIP

    ``default_policy`` answers the paper's open question about defaults:
    SKIP with annotation, overridable per query.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        materializer: MaterializationManager | None = None,
        default_policy: PartialResultPolicy = PartialResultPolicy.SKIP,
        pushdown: bool = True,
        name: str = "engine",
    ):
        self.catalog = catalog
        self.clock: SimClock = catalog.registry.clock
        self.cost_model = cost_model or CostModel()
        self.materializer = materializer
        self.default_policy = default_policy
        self.pushdown = pushdown
        self.name = name
        self.builder = PlanBuilder(self.cost_model)
        self.queries_run = 0

    # -- public API ------------------------------------------------------------

    def query(
        self,
        text: str | qast.Query,
        policy: PartialResultPolicy | None = None,
        required_sources: set[str] | None = None,
    ) -> QueryResult:
        """Run one XML-QL query and return annotated results."""
        query = parse_query(text) if isinstance(text, str) else text
        effective = policy or self.default_policy
        if required_sources and effective is not PartialResultPolicy.FAIL:
            effective = PartialResultPolicy.REQUIRE
        return self._execute(query, effective,
                             frozenset(required_sources or ()))

    def flwor_query(
        self,
        text: str,
        policy: PartialResultPolicy | None = None,
    ) -> QueryResult:
        """Run a FLWOR (XQuery-style) query over the same catalog.

        The paper planned to "adopt the standard query language
        recommended by the W3C Query Working Group"; because only a
        physical algebra was built, swapping the language is a front-end
        change.  FLWOR sources are fetched wholesale (no pushdown) —
        the unoptimized access path — with the same partial-results
        policies.
        """
        from repro.mediator.mapping import RelationMapping
        from repro.mediator.schema import ViewDef
        from repro.query.flwor import translate_flwor

        effective = policy or self.default_policy
        self.queries_run += 1
        context = _ExecutionContext(self, effective, frozenset())

        def resolver(name: str):
            resolved = self.catalog.resolve(name)
            if isinstance(resolved, ViewDef):
                return context.fetch_view(resolved)
            if isinstance(resolved, RelationMapping):
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.source_relation
            else:
                source = self.catalog.registry.get(resolved.source_name)
                relation = resolved.relation
            try:
                items = source.fetch_all(relation)
            except SourceUnavailableError:
                if effective is PartialResultPolicy.FAIL:
                    raise
                context.completeness.record_skip(source.name)
                context.stats.fragments_skipped += 1
                return []
            context.stats.fragments_executed += 1
            context.stats.remote_calls += 1
            context.stats.rows_transferred += len(items)
            return items

        plan = translate_flwor(text, resolver)
        started_virtual = self.clock.now
        started_wall = time.perf_counter()
        elements = plan.results()
        context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
        context.stats.elapsed_wall_ms = (time.perf_counter() - started_wall) * 1000
        context.stats.plan_text = plan.explain()
        return QueryResult(elements, context.completeness, context.stats)

    def explain(self, text: str | qast.Query) -> str:
        """The physical plan the engine would run, as indented text."""
        query = parse_query(text) if isinstance(text, str) else text
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        context = _ExecutionContext(self, self.default_policy, frozenset())
        plan = self.builder.build(decomposed, context)
        return plan.explain()

    def materialize_query_fragments(self, text: str | qast.Query,
                                    policy=None) -> int:
        """Materialize every remote fragment a query would execute.

        The management-tools path: "enable specification of which data
        sources (or queries over data sources) should be materialized in
        a local store".  Returns the number of fragments materialized.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        query = parse_query(text) if isinstance(text, str) else text
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        count = 0
        for unit in decomposed.units:
            if not isinstance(unit, FragmentUnit) or unit.dependent:
                continue
            if self.materializer.store.get(
                _fragment_store_key(unit.fragment)
            ) is not None:
                continue
            self.materializer.materialize(
                unit.fragment, lambda f, u=unit: u.source.execute(f), policy
            )
            count += 1
        return count

    def materialize_view(self, name: str, policy=None):
        """Materialize a mediated view's result elements in the local store.

        This is the paper's headline materialization unit: "one does not
        design a warehouse schema.  Instead, one materializes views over
        the mediated schema."  The view stays fresh per its policy; the
        engine transparently serves it on later queries.
        """
        if self.materializer is None:
            raise MediationError("engine has no materialization manager")
        resolved = self.catalog.resolve(name)
        if not isinstance(resolved, ViewDef):
            raise MediationError(f"{name!r} is not a mediated view")

        def fetch() -> list[Element]:
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.materialize_view(name, fetch, policy)

    def refresh_materialized_views(self) -> int:
        """Re-execute every stale materialized mediated view."""
        if self.materializer is None:
            return 0

        def fetch(name: str) -> list[Element]:
            resolved = self.catalog.resolve(name)
            assert isinstance(resolved, ViewDef)
            return self._execute(
                resolved.query, PartialResultPolicy.FAIL, frozenset()
            ).elements

        return self.materializer.refresh_stale_views(fetch)

    # -- internals ----------------------------------------------------------------

    def _execute(
        self,
        query: qast.Query,
        policy: PartialResultPolicy,
        required_sources: frozenset[str],
        parent: _ExecutionContext | None = None,
    ) -> QueryResult:
        self.queries_run += 1
        context = _ExecutionContext(self, policy, required_sources)
        bound = bind_query(query)
        decomposed = decompose(bound, self.catalog, self.pushdown)
        plan = self.builder.build(decomposed, context)
        started_virtual = self.clock.now
        started_wall = time.perf_counter()
        elements = plan.results()
        context.stats.elapsed_virtual_ms = self.clock.now - started_virtual
        context.stats.elapsed_wall_ms = (time.perf_counter() - started_wall) * 1000
        context.stats.plan_text = plan.explain()
        if parent is not None:
            parent.completeness.merge(context.completeness)
            parent.stats.fragments_executed += context.stats.fragments_executed
            parent.stats.fragments_from_cache += context.stats.fragments_from_cache
            parent.stats.fragments_skipped += context.stats.fragments_skipped
            parent.stats.rows_transferred += context.stats.rows_transferred
            parent.stats.remote_calls += context.stats.remote_calls
        return QueryResult(elements, context.completeness, context.stats)


def _fragment_store_key(fragment: Fragment) -> str:
    from repro.materialize.matching import fragment_key

    return fragment_key(fragment)

"""The wrapper contract: fragments, capabilities, the network model."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.algebra.pattern import TreePattern
from repro.errors import CapabilityError, SourceUnavailableError, TransientSourceError

if TYPE_CHECKING:  # runtime import would cycle through repro.resilience
    from repro.resilience.faults import FaultModel
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.query import ast as qast
from repro.simtime import SimClock
from repro.xmldm.schema import RecordType
from repro.xmldm.values import Record


@dataclass(frozen=True)
class Access:
    """One relation/collection access inside a fragment.

    ``pattern`` doubles as the projection list: its variables name the
    fields the source must return (for a relational source the pattern's
    flat children are column bindings).
    """

    relation: str
    pattern: TreePattern


@dataclass(frozen=True)
class Fragment:
    """A single-source query fragment the compiler pushes to a wrapper.

    * ``accesses`` — relations to read; variables shared between two
      accesses denote an equi-join evaluated *at the source*;
    * ``conditions`` — pushed selections over the fragment's variables;
    * ``input_vars`` — variables that will be supplied as parameters at
      execution time (dependent/parameterized access);
    * ``columns`` — projection pushdown: the subset of the fragment's
      variables the caller actually needs.  Empty means *all* variables.
      Conditions may still reference pruned variables (they are
      evaluated at the source, before projection).
    """

    source: str
    accesses: tuple[Access, ...]
    conditions: tuple[qast.Expr, ...] = ()
    input_vars: tuple[str, ...] = ()
    columns: tuple[str, ...] = ()

    def variables(self) -> tuple[str, ...]:
        names: list[str] = []
        for access in self.accesses:
            names.extend(access.pattern.variables())
        return tuple(dict.fromkeys(names))

    def output_variables(self) -> tuple[str, ...]:
        """The variables results actually carry (after projection)."""
        if not self.columns:
            return self.variables()
        keep = set(self.columns)
        return tuple(var for var in self.variables() if var in keep)

    def with_conditions(self, conditions: Iterable[qast.Expr]) -> "Fragment":
        return replace(self, conditions=tuple(conditions))

    def with_columns(self, columns: Iterable[str]) -> "Fragment":
        return replace(self, columns=tuple(columns))

    def describe(self) -> str:
        accesses = ", ".join(a.relation for a in self.accesses)
        text = (
            f"Fragment({self.source}: {accesses}; "
            f"{len(self.conditions)} conds; vars={','.join(self.variables())}"
        )
        if self.columns:
            text += f"; cols={','.join(self.columns)}"
        return text + ")"


@dataclass(frozen=True)
class CapabilityProfile:
    """What a source can evaluate natively (paper sections 2.1, 4).

    The optimizer never sends a wrapper more than its profile admits;
    anything beyond becomes residual work at the integration engine.
    """

    selections: bool = False        # can apply condition expressions
    projections: bool = False       # can return a subset of fields
    joins: bool = False             # can join relations within one fragment
    aggregates: bool = False        # reserved for future aggregate pushdown
    parameterized: bool = False     # supports input_vars (dependent access)
    requires_parameters: bool = False  # *only* answers parameterized calls
    batch_parameters: bool = False  # accepts many parameter sets per call
    #: results may be reused by the engine's fragment result cache;
    #: sources serving volatile, per-call data should opt out
    cacheable: bool = True
    #: condition operators the source accepts when ``selections`` is true
    condition_ops: frozenset[str] = frozenset(
        {"=", "!=", "<", "<=", ">", ">=", "AND", "OR", "LIKE"}
    )

    def accepts_condition(self, expr: qast.Expr) -> bool:
        """Conservative test: only operator trees over vars and literals."""
        if not self.selections:
            return False
        if isinstance(expr, (qast.Var, qast.Literal)):
            return True
        if isinstance(expr, qast.BinOp):
            return (
                expr.op in self.condition_ops
                and self.accepts_condition(expr.left)
                and self.accepts_condition(expr.right)
            )
        if isinstance(expr, qast.Not):
            return self.accepts_condition(expr.operand)
        return False  # function calls stay at the engine


def _wire_bytes(value: Any) -> int:
    """Deterministic wire-size estimate of one field value."""
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    return len(str(value))


@dataclass
class NetworkModel:
    """Per-source network cost model, charged to the shared clock.

    ``latency_ms`` is paid once per remote call; ``per_row_ms`` per
    transferred row.  ``calls``/``rows_transferred`` accumulate for the
    benchmarks.  ``bytes_transferred``/``values_transferred`` estimate
    payload size per column — they measure what projection pushdown
    saves, and deliberately do **not** advance the clock (virtual time
    stays bit-identical whether or not the estimate runs).
    """

    latency_ms: float = 0.0
    per_row_ms: float = 0.0
    calls: int = 0
    rows_transferred: int = 0
    bytes_transferred: int = 0
    values_transferred: int = 0

    def charge_call(self, clock: SimClock) -> None:
        self.calls += 1
        clock.advance(self.latency_ms)

    def charge_rows(self, clock: SimClock, count: int) -> None:
        self.rows_transferred += count
        clock.advance(self.per_row_ms * count)

    def account_payload(self, rows: Iterable[Any]) -> None:
        """Accumulate per-column byte/value counts for a result payload."""
        for item in rows:
            if isinstance(item, Record):
                total = 24  # per-row framing
                count = 0
                for name, value in item.items():
                    total += 8 + len(name) + _wire_bytes(value)
                    count += 1
                self.bytes_transferred += total
                self.values_transferred += count
            else:
                # documents and other wholesale payloads: flat estimate
                self.bytes_transferred += 64
                self.values_transferred += 1

    def snapshot(self) -> tuple[int, int, int, int]:
        """Counter snapshot for delta-based accounting by the engine."""
        return (
            self.calls,
            self.rows_transferred,
            self.bytes_transferred,
            self.values_transferred,
        )

    def reset_counters(self) -> None:
        self.calls = 0
        self.rows_transferred = 0
        self.bytes_transferred = 0
        self.values_transferred = 0


class DataSource:
    """Base class for source wrappers.

    Subclasses implement :meth:`_execute` (fragment evaluation against
    local data) and :meth:`relations`.  The base class handles network
    accounting and availability.
    """

    capabilities = CapabilityProfile()

    def __init__(self, name: str, clock: SimClock | None = None,
                 network: NetworkModel | None = None,
                 faults: "FaultModel | None" = None):
        self.name = name
        self.clock = clock or SimClock()
        self.network = network or NetworkModel()
        #: optional transient-fault injector consulted on every call
        self.faults = faults
        #: claimed by an engine's ``use_tracer``; every remote call
        #: emits a ``remote_call`` event onto the open span
        self.tracer: Tracer = NULL_TRACER
        #: the source's change feed, or None until :meth:`enable_cdc`
        self.changelog = None

    # -- change data capture ----------------------------------------------

    def enable_cdc(self, keys: Mapping[str, str] | None = None):
        """Attach a :class:`~repro.cdc.changelog.ChangeLog` to this source.

        ``keys`` maps relation names to the field whose value keys rows
        of that relation (primary key, id attribute, ...).  Mutation
        helpers on concrete sources emit change records once a feed is
        attached; without one they mutate silently, as before.
        """
        from repro.cdc.changelog import ChangeLog  # deferred: cdc imports us

        if self.changelog is None:
            self.changelog = ChangeLog(self.name, self.clock)
        for relation, key_field in (keys or {}).items():
            self.changelog.declare_key(relation, key_field)
        return self.changelog

    # -- metadata ---------------------------------------------------------

    def relations(self) -> dict[str, RecordType]:
        """Exported relation name -> record type."""
        raise NotImplementedError

    def cardinality(self, relation: str) -> int:
        """Estimated row count of a relation (for the cost model)."""
        raise NotImplementedError

    # -- availability --------------------------------------------------------

    def available(self) -> bool:
        """Whether the source is reachable right now."""
        return True

    def check_available(self) -> None:
        if not self.available():
            raise SourceUnavailableError(self.name)

    # -- execution --------------------------------------------------------------

    def execute(
        self, fragment: Fragment, params: Mapping[str, Any] | None = None
    ) -> list[Record]:
        """Run a fragment remotely; returns records keyed by variable.

        Charges one call latency plus per-row transfer to the clock.
        Raises :class:`SourceUnavailableError` when offline and
        :class:`CapabilityError` when the fragment exceeds the profile.
        """
        self.check_available()
        self.validate_fragment(fragment)
        if fragment.input_vars and not params:
            raise CapabilityError(
                f"fragment for {self.name!r} needs parameters "
                f"{fragment.input_vars} but none were supplied"
            )
        self.network.charge_call(self.clock)
        self.tracer.event("remote_call", source=self.name,
                          latency_ms=self.network.latency_ms)
        if self.faults is not None:
            self.faults.inject_call(self.name, self.clock,
                                    self.network.latency_ms)
        rows = list(self._execute(fragment, dict(params or {})))
        self._charge_result_rows(rows)
        return rows

    def execute_batch(
        self,
        fragment: Fragment,
        param_sets: list[Mapping[str, Any]],
    ) -> list[list[Record]]:
        """Run one parameterized fragment for many parameter sets.

        Returns one record list per parameter set, aligned by position.
        Sources advertising ``batch_parameters`` answer the whole batch
        in a *single* remote call — one call latency amortized over the
        batch, which is what eliminates the N+1 pattern of dependent
        joins.  Everything else falls back to one call per set.
        """
        if not param_sets:
            return []
        if not self.capabilities.batch_parameters:
            return [self.execute(fragment, params) for params in param_sets]
        self.check_available()
        self.validate_fragment(fragment)
        if fragment.input_vars and any(not params for params in param_sets):
            raise CapabilityError(
                f"fragment for {self.name!r} needs parameters "
                f"{fragment.input_vars} but an empty set was supplied"
            )
        self.network.charge_call(self.clock)
        self.tracer.event("remote_batch_call", source=self.name,
                          probes=len(param_sets))
        if self.faults is not None:
            self.faults.inject_call(self.name, self.clock,
                                    self.network.latency_ms)
        results = [
            list(self._execute(fragment, dict(params)))
            for params in param_sets
        ]
        # transfer is charged over the concatenated result stream; a
        # mid-stream drop fails the whole batch (the retry re-sends it)
        flat = [row for rows in results for row in rows]
        self._charge_result_rows(flat)
        return results

    def _charge_result_rows(self, rows: list) -> None:
        """Charge transfer for a result, honoring injected stream drops.

        A mid-stream drop still pays for the rows delivered before the
        cut — the caller's retry re-transfers them, which is exactly the
        cost profile retries have against real flaky sources.
        """
        if self.faults is not None:
            cut = self.faults.drop_point(len(rows))
            if cut is not None:
                self.network.charge_rows(self.clock, cut)
                self.network.account_payload(rows[:cut])
                raise TransientSourceError(
                    self.name,
                    f"stream dropped after {cut} of {len(rows)} rows",
                )
        self.network.charge_rows(self.clock, len(rows))
        self.network.account_payload(rows)

    def validate_fragment(self, fragment: Fragment) -> None:
        profile = self.capabilities
        if len(fragment.accesses) > 1 and not profile.joins:
            raise CapabilityError(
                f"source {self.name!r} cannot join within a fragment"
            )
        if fragment.conditions and not profile.selections:
            raise CapabilityError(
                f"source {self.name!r} cannot evaluate selections"
            )
        for condition in fragment.conditions:
            if not profile.accepts_condition(condition):
                raise CapabilityError(
                    f"source {self.name!r} rejects condition {condition}"
                )
        if fragment.input_vars and not profile.parameterized:
            raise CapabilityError(
                f"source {self.name!r} does not accept parameters"
            )
        if fragment.columns and not profile.projections:
            raise CapabilityError(
                f"source {self.name!r} cannot project a column subset"
            )
        if profile.requires_parameters and not fragment.input_vars:
            raise CapabilityError(
                f"source {self.name!r} answers only parameterized calls"
            )
        known = self.relations()
        for access in fragment.accesses:
            if access.relation not in known:
                raise CapabilityError(
                    f"source {self.name!r} exports no relation "
                    f"{access.relation!r}"
                )

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        raise NotImplementedError

    def fetch_all(self, relation: str) -> list[Any]:
        """Fetch a relation wholesale (documents or records).

        The unoptimized access path used by front ends that do their own
        navigation (the FLWOR dialect); charges the network model like
        any other call.
        """
        self.check_available()
        self.network.charge_call(self.clock)
        self.tracer.event("remote_call", source=self.name, relation=relation,
                          latency_ms=self.network.latency_ms)
        if self.faults is not None:
            self.faults.inject_call(self.name, self.clock,
                                    self.network.latency_ms)
        items = list(self._fetch_all(relation))
        self._charge_result_rows(items)
        return items

    def _fetch_all(self, relation: str) -> Iterable[Any]:
        raise NotImplementedError(
            f"{type(self).__name__} does not support wholesale access"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"

"""Vectorized columnar execution: bit-equivalence with the row path.

The contract under test: ``vectorized=True`` (and any ``batch_rows``)
changes *throughput only*.  Results are bit-identical to the row path
and the determinism-checked ``counters()`` are unchanged — under
faults, retries, fetch fan-out, fragment caching, and projection
pushdown.  The algebra-level properties drive the operators directly
over heterogeneous rows (records that bind different variable subsets);
the engine-level properties sweep whole configurations.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import (
    MISSING,
    ColumnPredicate,
    Compute,
    Distinct,
    HashJoin,
    Limit,
    Operator,
    RecordBatch,
    Select,
    Sort,
    batches_from_rows,
    fuse_sort_limit,
)
from repro.algebra.operators import TopK
from repro.algebra.grouping import AggregateSpec, GroupBy
from repro.algebra.tuples import BindingTuple
from repro.core import NimbleEngine
from repro.mediator.catalog import Catalog
from repro.query.exprs import flex_compare
from repro.resilience import FaultModel, ResiliencePolicy, RetryPolicy
from repro.simtime import SimClock
from repro.sources import (
    AvailabilityModel,
    FlakySource,
    NetworkModel,
    SourceRegistry,
    XMLSource,
)
from repro.sources.relational import RelationalSource
from repro.sql import Database
from repro.xmldm import serialize


class RowSource(Operator):
    """Leaf yielding fixed dict rows; no native batch path (exercises
    the row->batch fallback bridge under every vectorized consumer)."""

    def __init__(self, rows):
        super().__init__()
        self._rows = rows

    def _produce(self):
        for row in self._rows:
            yield BindingTuple(dict(row))


def materialize(root):
    """Rows as order-insensitive (var, value) item tuples."""
    return [tuple(sorted(row.as_dict().items())) for row in root]


# -- strategies ---------------------------------------------------------------

value_st = st.one_of(
    st.integers(-20, 20),
    st.sampled_from(["ada", "bob", "cy", "", "7"]),
    st.booleans(),
)

# heterogeneous rows: each row binds a subset of {a, b, c}
row_st = st.fixed_dictionaries(
    {"a": value_st},
    optional={"b": value_st, "c": st.integers(0, 5)},
)
rows_st = st.lists(row_st, max_size=40)
batch_rows_st = st.sampled_from([1, 2, 3, 7, 64])


def sort_keys():
    def key(row):
        return row.get("c", -1)

    return [(key, False)]


def build_pipeline(rows, threshold, limit):
    root = RowSource(rows)
    root = Select(root, ColumnPredicate("a", ">=", threshold))
    root = Compute(root, "d", lambda row: row.get("c", 0))
    root = Distinct(root)
    root = Sort(root, sort_keys())
    if limit is not None:
        root = Limit(root, limit)
    return root


class TestAlgebraBitEquivalence:
    @given(rows_st, st.integers(-20, 20), st.one_of(st.none(), st.integers(0, 10)),
           batch_rows_st)
    @settings(max_examples=60, deadline=None)
    def test_pipeline_matches_row_path(self, rows, threshold, limit, batch_rows):
        expected = materialize(build_pipeline(rows, threshold, limit))
        vectorized = build_pipeline(rows, threshold, limit)
        vectorized.bind_vectorized(batch_rows)
        assert materialize(vectorized) == expected

    @given(rows_st, batch_rows_st)
    @settings(max_examples=40, deadline=None)
    def test_rows_out_counters_match(self, rows, batch_rows):
        row_root = build_pipeline(rows, 0, None)
        list(row_root)
        vec_root = build_pipeline(rows, 0, None)
        vec_root.bind_vectorized(batch_rows)
        list(vec_root)
        row_counts = [op.rows_out for op in row_root.walk()]
        vec_counts = [op.rows_out for op in vec_root.walk()]
        assert vec_counts == row_counts

    @given(rows_st, rows_st, batch_rows_st)
    @settings(max_examples=40, deadline=None)
    def test_hash_join_matches_row_path(self, left, right, batch_rows):
        expected = materialize(
            HashJoin(RowSource(left), RowSource(right), ("a",))
        )
        join = HashJoin(RowSource(left), RowSource(right), ("a",))
        join.bind_vectorized(batch_rows)
        assert materialize(join) == expected

    @given(rows_st, batch_rows_st)
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_row_path(self, rows, batch_rows):
        def build():
            return GroupBy(
                RowSource(rows),
                ("c",),
                [AggregateSpec("n", "count", lambda row: row.get("a")),
                 AggregateSpec("lo", "min", lambda row: row.get("a"))],
            )

        expected = materialize(build())
        grouped = build()
        grouped.bind_vectorized(batch_rows)
        assert materialize(grouped) == expected


class TestShredding:
    @given(rows_st, batch_rows_st)
    @settings(max_examples=40, deadline=None)
    def test_batches_round_trip_rows(self, rows, batch_rows):
        tuples = [BindingTuple(dict(row)) for row in rows]
        rebuilt = [
            tuple(sorted(row.as_dict().items()))
            for batch in batches_from_rows(iter(tuples), batch_rows)
            for row in batch.to_tuples()
        ]
        assert rebuilt == [tuple(sorted(row.as_dict().items())) for row in tuples]

    def test_missing_is_not_a_value(self):
        batch = RecordBatch({"a": [1, MISSING], "b": [MISSING, 2]})
        rows = [row.as_dict() for row in batch.to_tuples()]
        assert rows == [{"a": 1}, {"b": 2}]


class TestColumnPredicate:
    @given(st.lists(value_st, max_size=30), value_st)
    @settings(max_examples=60, deadline=None)
    def test_batch_eval_matches_flex_compare(self, values, literal):
        predicate = ColumnPredicate("a", ">", literal)
        batch = RecordBatch({"a": list(values)})
        live = set(predicate.batch_eval(batch))
        for index, value in enumerate(values):
            cmp = flex_compare(value, literal)
            assert (index in live) == (cmp is not None and cmp > 0)


class TestTopKFusion:
    @given(rows_st, st.integers(0, 10), batch_rows_st)
    @settings(max_examples=60, deadline=None)
    def test_fused_topk_pins_order_and_ties(self, rows, limit, batch_rows):
        # duplicate sort keys galore ("c" has 6 distinct values): the
        # fused TopK must keep the stable sort's tie order exactly
        unfused = Limit(Sort(RowSource(rows), sort_keys()), limit)
        expected = materialize(unfused)
        fused = fuse_sort_limit(
            Limit(Sort(RowSource(rows), sort_keys()), limit)
        )
        assert isinstance(fused, TopK)
        assert materialize(fused) == expected
        vectorized = fuse_sort_limit(
            Limit(Sort(RowSource(rows), sort_keys()), limit)
        )
        vectorized.bind_vectorized(batch_rows)
        assert materialize(vectorized) == expected

    def test_fusion_only_rewrites_adjacent_pairs(self):
        source = RowSource([{"a": 1}])
        root = Limit(Select(Sort(source, sort_keys()), lambda row: True), 1)
        assert fuse_sort_limit(root) is root  # Select in between: no fusion


# -- engine-level sweeps ------------------------------------------------------

ITEMS_XML = "<r>" + "".join(
    f"<item><k>{i % 7}</k><v>{i}</v><w>pad-{i:04d}</w></item>"
    for i in range(60)
) + "</r>"
FEED_QUERY = (
    'WHERE <item><k>$k</k><v>$v</v><w>$w</w></item> IN "feed.data", '
    '$v > 14 CONSTRUCT <out><k>$k</k><v>$v</v></out> ORDER BY $v'
)
NARROW_QUERY = (
    'WHERE <item><k>$k</k><v>$v</v><w>$w</w></item> IN "feed.data", '
    '$v > 14 CONSTRUCT <out>$k</out>'
)


def build_feed_engine(faults=None, **engine_kw):
    clock = SimClock()
    registry = SourceRegistry(clock)
    source = XMLSource(
        "feed", {"data": ITEMS_XML},
        network=NetworkModel(latency_ms=10.0, per_row_ms=0.1),
    )
    if faults is not None:
        source = FlakySource(source, AvailabilityModel(availability=1.0, seed=3),
                             faults=faults)
    registry.register(source)
    return NimbleEngine(Catalog(registry), **engine_kw), clock


def run_feed(query, repeats=1, faults=None, **engine_kw):
    engine, clock = build_feed_engine(faults=faults, **engine_kw)
    outputs, counters = [], []
    for _ in range(repeats):
        result = engine.query(query)
        outputs.append([serialize(element) for element in result.elements])
        counters.append(result.stats.counters())
    return outputs, counters, clock.now


class TestEngineBitEquivalence:
    def test_vectorized_sweep_is_bit_identical(self):
        # vectorized on/off compared *within* each configuration: the
        # cache changes counters legitimately, vectorization never does
        configs = [
            dict(),
            dict(fragment_cache_bytes=500_000),
            dict(max_parallel_fetches=1),
            dict(projection_pushdown=True),
            dict(projection_pushdown=True, fragment_cache_bytes=500_000),
        ]
        for config in configs:
            base = run_feed(FEED_QUERY, repeats=2, **config)
            for batch_rows in (1, 8, 1024):
                vec = run_feed(FEED_QUERY, repeats=2, vectorized=True,
                               batch_rows=batch_rows, **config)
                assert vec == base, (config, batch_rows)

    def test_vectorized_under_faults_matches_row_path(self):
        def sweep(vectorized):
            return run_feed(
                FEED_QUERY,
                repeats=6,
                faults=FaultModel(failure_rate=0.4, slow_rate=0.2, seed=11),
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=3, base_backoff_ms=5.0),
                    breaker=None,
                ),
                vectorized=vectorized,
            )

        row_outputs, row_counters, row_clock = sweep(False)
        vec_outputs, vec_counters, vec_clock = sweep(True)
        assert vec_outputs == row_outputs
        assert vec_counters == row_counters
        assert vec_clock == row_clock

    @given(st.sampled_from([1, 2, 5, 16, 1024]))
    @settings(max_examples=5, deadline=None)
    def test_batch_size_never_changes_answers(self, batch_rows):
        baseline = run_feed(FEED_QUERY)
        outputs, counters, _ = run_feed(
            FEED_QUERY, vectorized=True, batch_rows=batch_rows
        )
        assert (outputs, counters) == (baseline[0], baseline[1])

    def test_pushdown_reduces_transfer_not_answers(self):
        wide_outputs, _, _ = run_feed(NARROW_QUERY)
        engine_wide, _ = build_feed_engine()
        engine_narrow, _ = build_feed_engine(projection_pushdown=True)
        wide = engine_wide.query(NARROW_QUERY)
        narrow = engine_narrow.query(NARROW_QUERY)
        assert ([serialize(e) for e in narrow.elements]
                == [serialize(e) for e in wide.elements])
        assert narrow.stats.bytes_transferred < wide.stats.bytes_transferred
        assert narrow.stats.values_transferred < wide.stats.values_transferred
        # the determinism contract is unaffected by the transfer counters
        assert narrow.stats.counters() == wide.stats.counters()


class TestSqlColumnsRead:
    def build(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, "
            "city TEXT, tier INTEGER)"
        )
        db.insert_rows("t", [
            (i, f"n{i}", f"c{i % 3}", i % 4) for i in range(12)
        ])
        return db

    def test_projected_scan_reads_only_projected_columns(self):
        db = self.build()
        db.execute("SELECT name FROM t")
        assert db.counters["columns_read"] == 1

    def test_where_columns_count_too(self):
        db = self.build()
        db.execute("SELECT name FROM t WHERE tier = 2")
        assert db.counters["columns_read"] == 2

    def test_star_reads_everything(self):
        db = self.build()
        db.execute("SELECT * FROM t")
        assert db.counters["columns_read"] == 4

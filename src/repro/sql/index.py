"""Secondary indexes: hash (equality) and sorted (equality + range).

Indexes map column values to row ids.  The sorted index keeps parallel
``(key, rowid)`` entries ordered by :func:`repro.sql.types.sort_key` so
range predicates become bisect scans — giving the planner the real
index-vs-scan asymmetry the paper says its compiler exploits
("the presence of indices on the data", section 2.1).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.sql.types import sort_key


class Index:
    """Common interface for secondary indexes over a single column."""

    #: set by subclasses: whether the index supports range scans
    supports_ranges = False

    def __init__(self, name: str, column: str):
        self.name = name
        self.column = column

    def insert(self, key: Any, rowid: int) -> None:
        raise NotImplementedError

    def delete(self, key: Any, rowid: int) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> Iterator[int]:
        """Row ids with exactly this key (NULL keys are never indexed)."""
        raise NotImplementedError


class HashIndex(Index):
    """Equality-only index: dict from key to the set of row ids."""

    supports_ranges = False

    def __init__(self, name: str, column: str):
        super().__init__(name, column)
        self._buckets: dict[Any, set[int]] = {}

    def insert(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        self._buckets.setdefault(key, set()).add(rowid)

    def delete(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Any) -> Iterator[int]:
        if key is None:
            return iter(())
        return iter(sorted(self._buckets.get(key, ())))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex(Index):
    """Ordered index supporting equality and range scans via bisect."""

    supports_ranges = True

    def __init__(self, name: str, column: str):
        super().__init__(name, column)
        self._entries: list[tuple[tuple, int]] = []  # (sort key, rowid)

    def insert(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        bisect.insort(self._entries, (sort_key(key), rowid))

    def delete(self, key: Any, rowid: int) -> None:
        if key is None:
            return
        entry = (sort_key(key), rowid)
        pos = bisect.bisect_left(self._entries, entry)
        if pos < len(self._entries) and self._entries[pos] == entry:
            self._entries.pop(pos)

    def lookup(self, key: Any) -> Iterator[int]:
        if key is None:
            return iter(())
        target = sort_key(key)
        pos = bisect.bisect_left(self._entries, (target,))
        result = []
        while pos < len(self._entries) and self._entries[pos][0] == target:
            result.append(self._entries[pos][1])
            pos += 1
        return iter(result)

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Row ids whose key lies in [low, high] (either bound optional)."""
        if low is None:
            start = 0
        else:
            key = sort_key(low)
            start = (
                bisect.bisect_left(self._entries, (key,))
                if low_inclusive
                else bisect.bisect_right(self._entries, (key, float("inf")))
            )
        if high is None:
            stop = len(self._entries)
        else:
            key = sort_key(high)
            stop = (
                bisect.bisect_right(self._entries, (key, float("inf")))
                if high_inclusive
                else bisect.bisect_left(self._entries, (key,))
            )
        for pos in range(start, stop):
            yield self._entries[pos][1]

    def __len__(self) -> int:
        return len(self._entries)

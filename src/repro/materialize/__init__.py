"""Materialization and caching: the compound architecture of section 3.3.

"A cornerstone of our architecture is that the system should be
configurable to query on demand as well as materialize some data
locally ... one does not design a warehouse schema.  Instead, one
materializes views over the mediated schema."

* :mod:`store` — the local store of materialized fragment results;
* :mod:`policy` — freshness policies (TTL / manual / always-refresh);
* :mod:`matching` — the containment test deciding when a materialized
  copy answers a new fragment (with residual local filtering);
* :mod:`manager` — the runtime: serve-or-fetch, refresh, accounting;
* :mod:`statistics` — the observed workload the selector learns from;
* :mod:`selection` — greedy benefit/cost view selection under a storage
  budget and noisy cost estimates (the open problem the paper poses).
"""

from repro.materialize.manager import MaterializationManager
from repro.materialize.matching import fragment_key
from repro.materialize.policy import RefreshPolicy
from repro.materialize.selection import SelectionResult, greedy_select
from repro.materialize.statistics import WorkloadStats
from repro.materialize.store import LocalStore, MaterializedView

__all__ = [
    "LocalStore",
    "MaterializationManager",
    "MaterializedView",
    "RefreshPolicy",
    "SelectionResult",
    "WorkloadStats",
    "fragment_key",
    "greedy_select",
]

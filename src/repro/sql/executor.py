"""Expression evaluation and physical plan nodes for the SQL engine.

Rows flow between nodes as *environments*: a mapping from table binding
(alias) to a column->value dict, optionally paired with a map of computed
aggregate values.  The final Project node turns environments into output
tuples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ExecutionError, SQLError
from repro.sql import ast
from repro.sql.functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS, Aggregator
from repro.sql.index import SortedIndex
from repro.sql.storage import Table
from repro.sql.types import is_truthy, sort_key, sql_compare

Env = dict[str, dict[str, Any]]
AggMap = dict[ast.Expr, Any]


@dataclass
class Row:
    """One row in flight: bindings plus (for grouped queries) aggregates."""

    env: Env
    aggregates: AggMap | None = None


class Evaluator:
    """Evaluates SQL expressions against a row environment."""

    def __init__(self, params: tuple[Any, ...] = ()):
        self.params = params

    def evaluate(self, expr: ast.Expr, row: Row) -> Any:
        if row.aggregates is not None and expr in row.aggregates:
            return row.aggregates[expr]
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {expr!r}")
        return method(expr, row)

    def truth(self, expr: ast.Expr, row: Row) -> bool:
        return is_truthy(self.evaluate(expr, row))

    # -- expression cases ----------------------------------------------------

    def _eval_literal(self, expr: ast.Literal, row: Row) -> Any:
        return expr.value

    def _eval_param(self, expr: ast.Param, row: Row) -> Any:
        try:
            return self.params[expr.index]
        except IndexError:
            raise ExecutionError(
                f"statement uses parameter {expr.index + 1} but only "
                f"{len(self.params)} supplied"
            ) from None

    def _eval_columnref(self, expr: ast.ColumnRef, row: Row) -> Any:
        env = row.env
        if expr.table is not None:
            binding = env.get(expr.table)
            if binding is None:
                raise ExecutionError(f"unknown table binding {expr.table!r}")
            if expr.column not in binding:
                raise ExecutionError(f"no column {expr.column!r} in {expr.table!r}")
            return binding[expr.column]
        hits = [b for b in env.values() if expr.column in b]
        if not hits:
            raise ExecutionError(f"unknown column {expr.column!r}")
        if len(hits) > 1:
            raise ExecutionError(f"ambiguous column {expr.column!r}")
        return hits[0][expr.column]

    def _eval_binaryop(self, expr: ast.BinaryOp, row: Row) -> Any:
        op = expr.op
        if op == "AND":
            left = self.evaluate(expr.left, row)
            if left is False:
                return False
            right = self.evaluate(expr.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(expr.left, row)
            if left is True:
                return True
            right = self.evaluate(expr.right, row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = sql_compare(left, right)
            if cmp is None:
                return None
            return {
                "=": cmp == 0,
                "<>": cmp != 0,
                "<": cmp < 0,
                "<=": cmp <= 0,
                ">": cmp > 0,
                ">=": cmp >= 0,
            }[op]
        if left is None or right is None:
            return None
        if op == "||":
            return str(left) + str(right)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return None  # SQL-style: division by zero yields NULL
                result = left / right
                if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                    return left // right
                return result
            if op == "%":
                if right == 0:
                    return None
                return left % right
        except TypeError as exc:
            raise ExecutionError(f"bad operands for {op!r}: {left!r}, {right!r}") from exc
        raise ExecutionError(f"unknown operator {op!r}")

    def _eval_unaryop(self, expr: ast.UnaryOp, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if expr.op == "NOT":
            if value is None:
                return None
            return not value
        if expr.op == "-":
            return None if value is None else -value
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _eval_funccall(self, expr: ast.FuncCall, row: Row) -> Any:
        if expr.name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate {expr.name} used outside GROUP BY context"
            )
        function = SCALAR_FUNCTIONS.get(expr.name)
        if function is None:
            raise SQLError(f"unknown function {expr.name!r}")
        args = [self.evaluate(arg, row) for arg in expr.args]
        return function(*args)

    def _eval_inlist(self, expr: ast.InList, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
                continue
            cmp = sql_compare(value, candidate)
            if cmp == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_between(self, expr: ast.Between, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        low = self.evaluate(expr.low, row)
        high = self.evaluate(expr.high, row)
        if value is None or low is None or high is None:
            return None
        inside = sql_compare(value, low) >= 0 and sql_compare(value, high) <= 0
        return inside != expr.negated

    def _eval_like(self, expr: ast.Like, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        pattern = self.evaluate(expr.pattern, row)
        if value is None or pattern is None:
            return None
        matched = like_match(str(value), str(pattern))
        return matched != expr.negated

    def _eval_isnull(self, expr: ast.IsNull, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        return (value is None) != expr.negated


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value, flags=re.DOTALL) is not None


# -- physical plan nodes --------------------------------------------------------


class PlanNode:
    """Base class for executable plan nodes."""

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["PlanNode", ...]:
        return ()


def _selected_positions(
    table: Table, columns: tuple[str, ...] | None
) -> list[tuple[str, int]]:
    """(name, position) pairs a scan materializes; None = every column."""
    schema = table.schema
    if columns is None:
        return [(name, position)
                for position, name in enumerate(schema.column_names)]
    return [(name, schema.column_index(name)) for name in columns]


class SeqScanNode(PlanNode):
    """Full scan of a table; counts rows for the engine's statistics.

    ``columns`` restricts the scan to a subset (projection pushdown):
    only those positions are materialized into the row environment, and
    ``columns_read`` counts the subset width once per scan.
    """

    def __init__(self, table: Table, binding: str, counters: dict[str, int],
                 columns: tuple[str, ...] | None = None):
        self.table = table
        self.binding = binding
        self.counters = counters
        self.columns = columns

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        selected = _selected_positions(self.table, self.columns)
        self.counters["columns_read"] += len(selected)
        for _, values in self.table.scan():
            self.counters["rows_scanned"] += 1
            yield Row({
                self.binding: {
                    name: values[position] for name, position in selected
                }
            })

    def describe(self) -> str:
        if self.columns is not None:
            return (
                f"SeqScan({self.table.name} AS {self.binding} "
                f"cols={','.join(self.columns)})"
            )
        return f"SeqScan({self.table.name} AS {self.binding})"


class IndexScanNode(PlanNode):
    """Index lookup (equality) or range scan over a sorted index."""

    def __init__(
        self,
        table: Table,
        binding: str,
        index_name: str,
        counters: dict[str, int],
        equals: ast.Expr | None = None,
        low: ast.Expr | None = None,
        high: ast.Expr | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        columns: tuple[str, ...] | None = None,
    ):
        self.table = table
        self.binding = binding
        self.index_name = index_name
        self.counters = counters
        self.equals = equals
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.columns = columns

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        index = self.table.indexes[self.index_name]
        empty = Row({})
        if self.equals is not None:
            key = evaluator.evaluate(self.equals, empty)
            rowids = index.lookup(key)
        else:
            assert isinstance(index, SortedIndex)
            low = None if self.low is None else evaluator.evaluate(self.low, empty)
            high = None if self.high is None else evaluator.evaluate(self.high, empty)
            rowids = index.range_scan(low, high, self.low_inclusive, self.high_inclusive)
        selected = _selected_positions(self.table, self.columns)
        self.counters["columns_read"] += len(selected)
        for rowid in rowids:
            values = self.table.get(rowid)
            if values is None:
                continue
            self.counters["rows_scanned"] += 1
            yield Row({
                self.binding: {
                    name: values[position] for name, position in selected
                }
            })

    def describe(self) -> str:
        kind = "eq" if self.equals is not None else "range"
        suffix = (
            f" cols={','.join(self.columns)}" if self.columns is not None else ""
        )
        return (
            f"IndexScan({self.table.name} AS {self.binding} "
            f"USING {self.index_name} [{kind}]{suffix})"
        )


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: ast.Expr):
        self.child = child
        self.predicate = predicate

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        for row in self.child.rows(evaluator):
            if evaluator.truth(self.predicate, row):
                yield row

    def describe(self) -> str:
        return f"Filter({self.predicate})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


class NestedLoopJoinNode(PlanNode):
    """General join; supports INNER and LEFT outer with any condition."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        condition: ast.Expr | None,
        kind: str,
        right_bindings: tuple[str, ...],
        right_columns: dict[str, tuple[str, ...]],
    ):
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind
        self.right_bindings = right_bindings
        self.right_columns = right_columns

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        right_rows = list(self.right.rows(evaluator))
        for left_row in self.left.rows(evaluator):
            matched = False
            for right_row in right_rows:
                merged = Row({**left_row.env, **right_row.env})
                if self.condition is None or evaluator.truth(self.condition, merged):
                    matched = True
                    yield merged
            if not matched and self.kind == "LEFT":
                yield Row({**left_row.env, **self._null_side()})

    def _null_side(self) -> Env:
        return {
            binding: {column: None for column in self.right_columns[binding]}
            for binding in self.right_bindings
        }

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind} ON {self.condition})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


class HashJoinNode(PlanNode):
    """Equi-join: builds a hash table on the right input."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: ast.Expr,
        right_key: ast.Expr,
        residual: ast.Expr | None,
        kind: str,
        right_bindings: tuple[str, ...],
        right_columns: dict[str, tuple[str, ...]],
    ):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.kind = kind
        self.right_bindings = right_bindings
        self.right_columns = right_columns

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        buckets: dict[Any, list[Row]] = {}
        for right_row in self.right.rows(evaluator):
            key = evaluator.evaluate(self.right_key, right_row)
            if key is None:
                continue  # NULL never joins
            buckets.setdefault(_hash_key(key), []).append(right_row)
        for left_row in self.left.rows(evaluator):
            key = evaluator.evaluate(self.left_key, left_row)
            matched = False
            if key is not None:
                for right_row in buckets.get(_hash_key(key), ()):
                    merged = Row({**left_row.env, **right_row.env})
                    if self.residual is None or evaluator.truth(self.residual, merged):
                        matched = True
                        yield merged
            if not matched and self.kind == "LEFT":
                yield Row({**left_row.env, **self._null_side()})

    def _null_side(self) -> Env:
        return {
            binding: {column: None for column in self.right_columns[binding]}
            for binding in self.right_bindings
        }

    def describe(self) -> str:
        return f"HashJoin({self.kind} {self.left_key} = {self.right_key})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


def _hash_key(value: Any) -> Any:
    """Normalize join keys so 1 and 1.0 land in the same bucket."""
    if isinstance(value, bool):
        return ("num", float(value))
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return value


class AggregateNode(PlanNode):
    """GROUP BY + aggregate evaluation (also handles global aggregates)."""

    def __init__(
        self,
        child: PlanNode,
        group_exprs: tuple[ast.Expr, ...],
        aggregate_calls: tuple[ast.FuncCall, ...],
        having: ast.Expr | None,
    ):
        self.child = child
        self.group_exprs = group_exprs
        self.aggregate_calls = aggregate_calls
        self.having = having

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        groups: dict[tuple, tuple[Row, list[Aggregator]]] = {}
        order: list[tuple] = []
        for row in self.child.rows(evaluator):
            key = tuple(
                sort_key(evaluator.evaluate(expr, row)) for expr in self.group_exprs
            )
            if key not in groups:
                aggregators = [
                    Aggregator(call.name, call.distinct, call.star)
                    for call in self.aggregate_calls
                ]
                groups[key] = (row, aggregators)
                order.append(key)
            _, aggregators = groups[key]
            for call, aggregator in zip(self.aggregate_calls, aggregators):
                if call.star:
                    aggregator.add(None)
                else:
                    aggregator.add(evaluator.evaluate(call.args[0], row))
        if not groups and not self.group_exprs:
            # Global aggregate over an empty input still yields one row.
            aggregators = [
                Aggregator(call.name, call.distinct, call.star)
                for call in self.aggregate_calls
            ]
            groups[()] = (Row({}), aggregators)
            order.append(())
        for key in order:
            representative, aggregators = groups[key]
            aggmap: AggMap = {
                call: aggregator.result()
                for call, aggregator in zip(self.aggregate_calls, aggregators)
            }
            out = Row(representative.env, aggmap)
            if self.having is None or evaluator.truth(self.having, out):
                yield out

    def describe(self) -> str:
        return (
            f"Aggregate(groups={len(self.group_exprs)}, "
            f"aggs={[c.name for c in self.aggregate_calls]})"
        )

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


class SortNode(PlanNode):
    def __init__(self, child: PlanNode, order_by: tuple[ast.OrderItem, ...]):
        self.child = child
        self.order_by = order_by

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        materialized = list(self.child.rows(evaluator))

        def key(row: Row) -> tuple:
            parts = []
            for item in self.order_by:
                value = sort_key(evaluator.evaluate(item.expr, row))
                parts.append(_Reversed(value) if item.descending else value)
            return tuple(parts)

        materialized.sort(key=key)
        yield from materialized

    def describe(self) -> str:
        return f"Sort({len(self.order_by)} keys)"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


class _Reversed:
    """Wrapper inverting comparison, for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, limit: int | None, offset: int | None):
        self.child = child
        self.limit = limit
        self.offset = offset or 0

    def rows(self, evaluator: Evaluator) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in self.child.rows(evaluator):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def describe(self) -> str:
        return f"Limit({self.limit} OFFSET {self.offset})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

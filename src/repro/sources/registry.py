"""The source registry: name -> wrapper, shared clock, fleet stats."""

from __future__ import annotations

from typing import Iterator

from repro.errors import SourceError
from repro.simtime import SimClock
from repro.sources.base import DataSource


class SourceRegistry:
    """All wrappers known to one deployment, sharing one clock."""

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self._sources: dict[str, DataSource] = {}
        #: registration epoch — bumped on every register(), consumed by
        #: the engine's compiled-plan cache for invalidation
        self.version = 0

    def register(self, source: DataSource) -> DataSource:
        """Add a wrapper; it is re-pointed at the registry's clock."""
        if source.name in self._sources:
            raise SourceError(f"source {source.name!r} already registered")
        self.version += 1
        source.clock = self.clock
        inner = getattr(source, "inner", None)
        if inner is not None:
            inner.clock = self.clock
        self._sources[source.name] = source
        return source

    def get(self, name: str) -> DataSource:
        source = self._sources.get(name)
        if source is None:
            raise SourceError(f"unknown source {name!r}")
        return source

    def __contains__(self, name: str) -> bool:
        return name in self._sources

    def __iter__(self) -> Iterator[DataSource]:
        return iter(self._sources.values())

    def names(self) -> list[str]:
        return sorted(self._sources)

    def available_sources(self) -> list[str]:
        return [name for name, s in self._sources.items() if s.available()]

    def reset_network_counters(self) -> None:
        for source in self._sources.values():
            source.network.reset_counters()

    def network_totals(self) -> dict[str, int]:
        """Aggregate calls and rows transferred across the fleet."""
        calls = sum(s.network.calls for s in self._sources.values())
        rows = sum(s.network.rows_transferred for s in self._sources.values())
        return {"calls": calls, "rows_transferred": rows}

"""Fleet-level SLOs: policies, sliding windows, error budgets, baselines.

The per-query traces and counters answer "what did *this* query do";
an administrator running the paper's mediator for millions of users
needs the fleet-level question answered too: *is the integration
system healthy, and are answers complete?*  This module turns the
per-query signals the engine already produces (``EngineStats``
counters, ``Completeness`` verdicts, virtual latencies) into:

* :class:`SloPolicy` — a declarative objective (availability,
  completeness rate, or a p95/p99 virtual-latency bound), scoped to
  one ``query_hash`` or global, evaluated over a sliding window of
  *virtual* time;
* **error budgets** — each policy's window tolerates
  ``(1 - required good fraction) * window_queries`` bad events; a
  query burns the availability budget when it trips a breaker, misses
  a deadline, is served stale, or returns an incomplete answer;
* :class:`RegressionDetector` — a per-``query_hash`` latency baseline
  (EWMA + nearest-rank percentiles over the first observations) that
  flags hashes whose current window exceeds the frozen baseline by a
  configurable factor, surfacing the plan-cache epoch and the
  fragment-cache hit-rate delta as suspected causes.

Everything is strictly observational: no method advances the virtual
clock, so wiring a tracker into the engine changes neither results nor
the determinism-checked ``counters()`` — the SLO analogue of
``NULL_TRACER``'s zero-overhead guarantee.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.observability.metrics import percentile
from repro.simtime import SimClock

#: the objectives a policy may declare
OBJECTIVES = ("availability", "completeness", "latency_p95", "latency_p99")

#: good-event fraction a latency objective requires (the percentile itself)
_LATENCY_FRACTIONS = {"latency_p95": 0.95, "latency_p99": 0.99}


@dataclass(frozen=True)
class SloPolicy:
    """One declarative service-level objective.

    ``target`` is the minimum good fraction for the ratio objectives
    (``availability``, ``completeness``) and the virtual-millisecond
    bound for the latency objectives (``latency_p95`` must sit at or
    under ``target`` ms).  ``query_hash`` scopes the policy to one
    query identity; ``None`` means fleet-global.
    """

    name: str
    objective: str
    target: float
    window_ms: float = 60_000.0
    query_hash: str | None = None

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; pick from {OBJECTIVES}"
            )
        if self.window_ms <= 0:
            raise ValueError("window_ms must be > 0")
        if self.objective in _LATENCY_FRACTIONS:
            if self.target <= 0:
                raise ValueError("latency targets are positive milliseconds")
        elif not 0.0 < self.target <= 1.0:
            raise ValueError("ratio targets must be in (0, 1]")

    @property
    def good_fraction_required(self) -> float:
        """The fraction of window queries that must be good events."""
        return _LATENCY_FRACTIONS.get(self.objective, self.target)


@dataclass(frozen=True)
class SloObservation:
    """One query's SLO-relevant footprint, stamped with virtual time."""

    at_ms: float
    query_hash: str
    virtual_ms: float
    complete: bool
    breaker_trips: int = 0
    deadline_misses: int = 0
    stale_served: int = 0
    #: catalog version epoch the query compiled under (plan-cache epoch)
    plan_epoch: Any = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def available(self) -> bool:
        """Did this query burn the availability budget?

        A query is an availability *bad event* when anything on the
        degraded-operation ladder fired: a breaker trip, a deadline
        miss, a stale serve, or an incomplete answer.
        """
        return (
            self.complete
            and not self.breaker_trips
            and not self.deadline_misses
            and not self.stale_served
        )

    def good_for(self, policy: SloPolicy) -> bool:
        if policy.objective == "availability":
            return self.available
        if policy.objective == "completeness":
            return self.complete
        return self.virtual_ms <= policy.target


@dataclass
class SloStatus:
    """One policy evaluated over its current window."""

    policy: SloPolicy
    window_queries: int
    good: int
    bad: int
    compliance: float
    met: bool
    budget_allowed: float
    budget_burned: int
    budget_remaining_fraction: float
    #: the measured window percentile, latency objectives only
    observed_ms: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy.name,
            "objective": self.policy.objective,
            "target": self.policy.target,
            "window_ms": self.policy.window_ms,
            "query_hash": self.policy.query_hash,
            "window_queries": self.window_queries,
            "good": self.good,
            "bad": self.bad,
            "compliance": self.compliance,
            "met": self.met,
            "budget_allowed": self.budget_allowed,
            "budget_burned": self.budget_burned,
            "budget_remaining_fraction": self.budget_remaining_fraction,
            "observed_ms": self.observed_ms,
        }


class SloTracker:
    """Sliding-window SLO evaluation over the engine's query stream.

    The engine feeds :meth:`observe_query` once per top-level query
    (sub-queries for views are folded into their parent, exactly like
    the query log).  Observations are retained for the longest policy
    window (bounded by ``max_observations``), stamped with the shared
    virtual clock, and evaluated on demand — evaluation never advances
    time, so two identical runs produce identical statuses.
    """

    def __init__(
        self,
        clock: SimClock,
        policies: Iterable[SloPolicy] = (),
        detector: "RegressionDetector | None" = None,
        max_observations: int = 4096,
    ):
        if max_observations < 1:
            raise ValueError("max_observations must be >= 1")
        self.clock = clock
        self.policies: list[SloPolicy] = []
        self.detector = detector
        self.max_observations = max_observations
        self._observations: deque[SloObservation] = deque(
            maxlen=max_observations
        )
        self.total_observed = 0
        for policy in policies:
            self.add_policy(policy)

    def add_policy(self, policy: SloPolicy) -> SloPolicy:
        if any(existing.name == policy.name for existing in self.policies):
            raise ValueError(f"duplicate SLO policy name {policy.name!r}")
        self.policies.append(policy)
        return policy

    # -- ingestion -----------------------------------------------------------

    def observe_query(
        self,
        query_hash: str,
        virtual_ms: float,
        completeness: Any,
        counters: dict[str, int] | None = None,
        cache_counters: dict[str, int] | None = None,
        plan_epoch: Any = None,
    ) -> SloObservation:
        """Record one executed query's footprint; returns the observation."""
        counters = counters or {}
        cache_counters = cache_counters or {}
        observation = SloObservation(
            at_ms=self.clock.now,
            query_hash=query_hash,
            virtual_ms=virtual_ms,
            complete=bool(completeness.complete),
            breaker_trips=counters.get("breaker_trips", 0),
            deadline_misses=counters.get("deadline_misses", 0),
            stale_served=counters.get("stale_served", 0),
            plan_epoch=plan_epoch,
            cache_hits=cache_counters.get("fragment_cache_hits", 0),
            cache_misses=cache_counters.get("fragment_cache_misses", 0),
        )
        self._observations.append(observation)
        self.total_observed += 1
        self._prune()
        if self.detector is not None:
            self.detector.observe(observation)
        return observation

    def _prune(self) -> None:
        """Drop observations older than the longest policy window."""
        horizon = max(
            (policy.window_ms for policy in self.policies), default=None
        )
        if horizon is None:
            return
        cutoff = self.clock.now - horizon
        while self._observations and self._observations[0].at_ms < cutoff:
            self._observations.popleft()

    # -- evaluation ----------------------------------------------------------

    def window(
        self, window_ms: float, query_hash: str | None = None
    ) -> list[SloObservation]:
        """Retained observations inside the window, oldest first."""
        cutoff = self.clock.now - window_ms
        return [
            observation
            for observation in self._observations
            if observation.at_ms >= cutoff
            and (query_hash is None or observation.query_hash == query_hash)
        ]

    def evaluate_policy(self, policy: SloPolicy) -> SloStatus:
        observations = self.window(policy.window_ms, policy.query_hash)
        total = len(observations)
        good = sum(1 for o in observations if o.good_for(policy))
        bad = total - good
        compliance = good / total if total else 1.0
        required = policy.good_fraction_required
        observed_ms: float | None = None
        if policy.objective in _LATENCY_FRACTIONS:
            observed_ms = percentile(
                [o.virtual_ms for o in observations],
                _LATENCY_FRACTIONS[policy.objective],
            )
            met = total == 0 or observed_ms <= policy.target
        else:
            met = compliance >= required
        allowed = (1.0 - required) * total
        if allowed > 0:
            remaining = max(0.0, 1.0 - bad / allowed)
        else:
            remaining = 1.0 if bad == 0 else 0.0
        return SloStatus(
            policy=policy,
            window_queries=total,
            good=good,
            bad=bad,
            compliance=compliance,
            met=met,
            budget_allowed=allowed,
            budget_burned=bad,
            budget_remaining_fraction=remaining,
            observed_ms=observed_ms,
        )

    def evaluate(self) -> list[SloStatus]:
        """Every policy's status, sorted by policy name (deterministic)."""
        return [
            self.evaluate_policy(policy)
            for policy in sorted(self.policies, key=lambda p: p.name)
        ]

    def summary(self) -> dict[str, Any]:
        return {
            "policies": len(self.policies),
            "retained_observations": len(self._observations),
            "total_observed": self.total_observed,
        }


# -- latency-regression detection -------------------------------------------


@dataclass
class LatencyBaseline:
    """The frozen latency fingerprint of one ``query_hash``."""

    query_hash: str
    ewma_ms: float = 0.0
    observations: int = 0
    samples: list[float] = field(default_factory=list)
    plan_epoch: Any = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def p95_ms(self) -> float:
        return percentile(self.samples, 0.95)

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0


@dataclass
class LatencyRegression:
    """One flagged hash: current window vs its frozen baseline."""

    query_hash: str
    baseline_ms: float
    current_ms: float
    factor: float
    window_queries: int
    suspected_causes: tuple[str, ...]
    context: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "query_hash": self.query_hash,
            "baseline_ms": self.baseline_ms,
            "current_ms": self.current_ms,
            "factor": self.factor,
            "window_queries": self.window_queries,
            "suspected_causes": list(self.suspected_causes),
            "context": dict(self.context),
        }


class RegressionDetector:
    """Per-``query_hash`` latency baselines with regression flagging.

    The first ``min_baseline`` observations of a hash *train* its
    baseline (EWMA plus a bounded sample list for nearest-rank
    percentiles) and freeze it; later observations feed a sliding
    current window.  A hash regresses when its current-window p95
    exceeds ``factor`` times the baseline p95 over at least
    ``min_current`` queries.  Because the baseline is frozen, a slow
    drift cannot quietly re-baseline itself — the detector keeps
    comparing against the healthy fingerprint until
    :meth:`reset_baseline` is called.

    Suspected causes ride along: a plan-cache epoch that moved since
    the baseline (the query was recompiled under a newer catalog) and
    a fragment-cache hit-rate drop beyond ``hit_rate_drop`` both name
    themselves; otherwise the blame defaults to ``source_latency``.
    """

    def __init__(
        self,
        clock: SimClock,
        factor: float = 2.0,
        window_ms: float = 30_000.0,
        min_baseline: int = 8,
        min_current: int = 3,
        alpha: float = 0.3,
        max_samples: int = 256,
        hit_rate_drop: float = 0.1,
    ):
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        if min_baseline < 1 or min_current < 1:
            raise ValueError("min_baseline and min_current must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.clock = clock
        self.factor = factor
        self.window_ms = window_ms
        self.min_baseline = min_baseline
        self.min_current = min_current
        self.alpha = alpha
        self.max_samples = max_samples
        self.hit_rate_drop = hit_rate_drop
        self._baselines: dict[str, LatencyBaseline] = {}
        self._current: dict[str, deque[SloObservation]] = {}

    # -- ingestion -----------------------------------------------------------

    def observe(self, observation: SloObservation) -> None:
        """Feed one query observation (the tracker calls this)."""
        baseline = self._baselines.get(observation.query_hash)
        if baseline is None:
            baseline = self._baselines[observation.query_hash] = (
                LatencyBaseline(observation.query_hash)
            )
        if baseline.observations < self.min_baseline:
            self._train(baseline, observation)
            return
        window = self._current.setdefault(observation.query_hash, deque())
        window.append(observation)
        cutoff = self.clock.now - self.window_ms
        while window and window[0].at_ms < cutoff:
            window.popleft()

    def _train(self, baseline: LatencyBaseline,
               observation: SloObservation) -> None:
        if baseline.observations == 0:
            baseline.ewma_ms = observation.virtual_ms
        else:
            baseline.ewma_ms = (
                self.alpha * observation.virtual_ms
                + (1.0 - self.alpha) * baseline.ewma_ms
            )
        baseline.observations += 1
        baseline.samples.append(observation.virtual_ms)
        if len(baseline.samples) > self.max_samples:
            del baseline.samples[0]
        baseline.plan_epoch = observation.plan_epoch
        baseline.cache_hits += observation.cache_hits
        baseline.cache_misses += observation.cache_misses

    # -- reading -------------------------------------------------------------

    def baseline(self, query_hash: str) -> LatencyBaseline | None:
        return self._baselines.get(query_hash)

    def reset_baseline(self, query_hash: str) -> None:
        """Forget one hash entirely (retrain from the next observation)."""
        self._baselines.pop(query_hash, None)
        self._current.pop(query_hash, None)

    def regressions(self) -> list[LatencyRegression]:
        """Currently regressed hashes, sorted by hash (deterministic)."""
        flagged = []
        cutoff = self.clock.now - self.window_ms
        for query_hash in sorted(self._current):
            baseline = self._baselines[query_hash]
            if baseline.observations < self.min_baseline:
                continue
            window = [
                o for o in self._current[query_hash] if o.at_ms >= cutoff
            ]
            if len(window) < self.min_current:
                continue
            current_ms = percentile([o.virtual_ms for o in window], 0.95)
            baseline_ms = max(baseline.p95_ms, 1e-9)
            if current_ms <= self.factor * baseline_ms:
                continue
            flagged.append(self._flag(query_hash, baseline, window,
                                      baseline_ms, current_ms))
        return flagged

    def _flag(self, query_hash: str, baseline: LatencyBaseline,
              window: list[SloObservation], baseline_ms: float,
              current_ms: float) -> LatencyRegression:
        causes: list[str] = []
        current_epochs = {o.plan_epoch for o in window}
        if any(epoch != baseline.plan_epoch for epoch in current_epochs):
            causes.append("plan_cache_epoch_changed")
        hits = sum(o.cache_hits for o in window)
        misses = sum(o.cache_misses for o in window)
        probes = hits + misses
        current_rate = hits / probes if probes else 0.0
        baseline_rate = baseline.cache_hit_rate
        rate_delta = current_rate - baseline_rate
        if probes + baseline.cache_hits + baseline.cache_misses > 0 and (
            rate_delta < -self.hit_rate_drop
        ):
            causes.append("cache_hit_rate_drop")
        if not causes:
            causes.append("source_latency")
        return LatencyRegression(
            query_hash=query_hash,
            baseline_ms=baseline_ms,
            current_ms=current_ms,
            factor=current_ms / baseline_ms,
            window_queries=len(window),
            suspected_causes=tuple(causes),
            context={
                "baseline_plan_epoch": str(baseline.plan_epoch),
                "current_plan_epochs": sorted(
                    str(epoch) for epoch in current_epochs
                ),
                "baseline_cache_hit_rate": baseline_rate,
                "current_cache_hit_rate": current_rate,
                "cache_hit_rate_delta": rate_delta,
                "baseline_ewma_ms": baseline.ewma_ms,
            },
        )

    def summary(self) -> dict[str, Any]:
        return {
            "baselines": len(self._baselines),
            "trained": sum(
                1 for b in self._baselines.values()
                if b.observations >= self.min_baseline
            ),
            "factor": self.factor,
            "window_ms": self.window_ms,
        }

"""Synthetic workloads standing in for the paper's customer deployments.

The paper's motivating scenarios (section 2): customer data "scattered
across multiple databases in the organization" after mergers and
acquisitions, and large web sites serving "information from multiple
internal sources".  Generators here produce deterministic, seeded
equivalents:

* :mod:`customers` — overlapping CRM/billing/support sources with known
  ground-truth identity, schema variation and injected dirt;
* :mod:`dirty` — the error injectors (typos, abbreviations, swaps,
  legacy codes);
* :mod:`websites` — a product catalog (XML), inventory (relational) and
  pricing service (parameterized endpoint) for the publishing scenario;
* :mod:`queries` — Zipf-weighted query workloads with hot-set drift.
"""

from repro.workloads.customers import CustomerUniverse, make_customer_universe
from repro.workloads.dirty import DirtMachine
from repro.workloads.queries import QueryWorkload, WorkloadSpec
from repro.workloads.websites import WebSiteWorkload, make_website_workload

__all__ = [
    "CustomerUniverse",
    "DirtMachine",
    "QueryWorkload",
    "WebSiteWorkload",
    "WorkloadSpec",
    "make_customer_universe",
    "make_website_workload",
]

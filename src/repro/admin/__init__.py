"""The data administrator subsystem and management tools.

Section 2.1: "Even though our main architecture is built on a federated
integration model, this alone is not always sufficient for all needs.
Thus we support a compound architecture that includes offline data
manipulation and replication as well, using our data administrator
sub-system."  And section 4 requires "configuration and management
tools that make it possible for administrators to set up, monitor, and
understand, the system."

* :mod:`replication` — scheduled offline replication jobs: copy (and
  optionally transform) source fragments into a local relational store
  on a virtual-clock cadence;
* :mod:`monitor` — source health probes with uptime bookkeeping, cache
  occupancy reports, and the trace/metrics/query-log view;
* :mod:`console` — the management console: one structured report of
  sources, mediated names, materialized views, replication jobs and
  engine statistics.
"""

from repro.admin.console import ManagementConsole
from repro.admin.monitor import (
    CacheMonitor,
    FreshnessMonitor,
    HealthMonitor,
    OverloadMonitor,
    SloMonitor,
    SourceHealth,
    TraceMonitor,
)
from repro.admin.replication import DataAdministrator, ReplicationJob

__all__ = [
    "CacheMonitor",
    "DataAdministrator",
    "FreshnessMonitor",
    "HealthMonitor",
    "ManagementConsole",
    "OverloadMonitor",
    "ReplicationJob",
    "SloMonitor",
    "SourceHealth",
    "TraceMonitor",
]

"""Exception hierarchy shared by every subsystem of the integration engine.

All errors raised by the library derive from :class:`ReproError` so that
applications can catch one base class at an API boundary.  Subsystems
define narrower classes here rather than locally so that cross-module
code (the engine, the tests) can name them without import cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class XMLParseError(ReproError):
    """Raised when a document is not well-formed XML (subset)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column


class PathSyntaxError(ReproError):
    """Raised for malformed navigation path expressions."""


class QuerySyntaxError(ReproError):
    """Raised when an XML-QL query fails to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.message = message
        self.line = line
        self.column = column


class BindingError(ReproError):
    """Raised during semantic analysis (unbound/misused variables)."""


class SQLError(ReproError):
    """Base class for the embedded relational engine's errors."""


class SQLSyntaxError(SQLError):
    """Raised when a SQL statement fails to lex or parse."""


class SQLSchemaError(SQLError):
    """Raised for unknown tables/columns or DDL conflicts."""


class SQLTypeError(SQLError):
    """Raised when a value cannot be coerced to a column's type."""


class SQLIntegrityError(SQLError):
    """Raised on primary-key or NOT NULL violations."""


class SourceError(ReproError):
    """Base class for data-source wrapper failures."""


class SourceUnavailableError(SourceError):
    """Raised when a source is offline or unreachable."""

    def __init__(self, source_name: str, reason: str = "offline"):
        super().__init__(f"source {source_name!r} unavailable: {reason}")
        self.source_name = source_name
        self.reason = reason


class TransientSourceError(SourceUnavailableError):
    """Raised for a per-call transient fault (timeout-class, retryable).

    Subclasses :class:`SourceUnavailableError` so existing partial-result
    policy handling treats an unretried transient fault like an outage.
    """

    def __init__(self, source_name: str, reason: str = "transient fault"):
        super().__init__(source_name, reason)


class SourceTimeoutError(SourceUnavailableError):
    """Raised when a call or query exceeds its deadline budget."""

    def __init__(self, source_name: str, reason: str = "deadline exceeded"):
        super().__init__(source_name, reason)


class CircuitOpenError(SourceUnavailableError):
    """Raised when a source's circuit breaker is open (fail fast)."""

    def __init__(self, source_name: str, cooldown_remaining_ms: float = 0.0):
        super().__init__(
            source_name,
            f"circuit open ({cooldown_remaining_ms:.0f} ms until probe)",
        )
        self.cooldown_remaining_ms = cooldown_remaining_ms


class CapabilityError(SourceError):
    """Raised when a fragment exceeds a source's query capabilities."""


class MediationError(ReproError):
    """Raised for bad mappings, unknown mediated relations, or view cycles."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce an executable plan."""


class ExecutionError(ReproError):
    """Raised for runtime failures inside a physical plan."""


class CleaningError(ReproError):
    """Raised by the data-cleaning subsystem."""


class LineageError(CleaningError):
    """Raised on inconsistent lineage operations (bad rollback, etc.)."""


class MaterializationError(ReproError):
    """Raised by the materialization/caching subsystem."""


class AuthError(ReproError):
    """Raised when a lens invocation fails authentication or authorization."""


class LensError(ReproError):
    """Raised for misconfigured or misused lenses."""


class OverloadError(ReproError):
    """Base class for overload-protection failures.

    Carries enough structure for a client to act on the rejection:
    ``retry_after_ms`` is virtual time until the caller should retry,
    ``priority`` is the admission priority of the rejected query (an
    ``int``/IntEnum, duck-typed to avoid an import cycle with the
    resilience package), and ``brownout_level`` is the shedder's ladder
    rung at rejection time (0 = normal operation).
    """

    def __init__(
        self,
        message: str,
        retry_after_ms: float = 0.0,
        priority: int = 0,
        brownout_level: int = 0,
    ):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.priority = priority
        self.brownout_level = brownout_level


class QueryRejected(OverloadError):
    """Raised when admission control or load shedding refuses a query."""

    def __init__(
        self,
        reason: str,
        retry_after_ms: float = 0.0,
        priority: int = 0,
        brownout_level: int = 0,
    ):
        super().__init__(
            f"query rejected: {reason} (retry after {retry_after_ms:.0f} ms)",
            retry_after_ms=retry_after_ms,
            priority=priority,
            brownout_level=brownout_level,
        )
        self.reason = reason

"""Abstract syntax for the XML-QL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


# -- expressions (conditions) -------------------------------------------------


class Expr:
    """Base class for condition expressions."""


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # '=', '!=', '<', '<=', '>', '>=', 'AND', 'OR', 'LIKE', '+', '-', '*', '/', '%'
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


def expr_variables(expr: Expr) -> set[str]:
    """All variables referenced by an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, BinOp):
        return expr_variables(expr.left) | expr_variables(expr.right)
    if isinstance(expr, Not):
        return expr_variables(expr.operand)
    if isinstance(expr, Call):
        out: set[str] = set()
        for arg in expr.args:
            out |= expr_variables(arg)
        return out
    return set()


# -- patterns ------------------------------------------------------------------


@dataclass(frozen=True)
class AttrMatch:
    """attribute=$var or attribute="literal" in a pattern."""

    name: str
    var: str | None = None
    literal: str | None = None


@dataclass(frozen=True)
class PatternElement:
    """One element pattern in a WHERE clause."""

    tag: str
    attributes: tuple[AttrMatch, ...] = ()
    children: tuple["PatternElement", ...] = ()
    text_var: str | None = None
    text_literal: str | None = None
    element_var: str | None = None  # ELEMENT_AS $e
    #: written <//tag ...>: matches at any depth below its parent pattern
    descendant: bool = False

    def variables(self) -> list[str]:
        names: list[str] = []
        for attribute in self.attributes:
            if attribute.var is not None:
                names.append(attribute.var)
        if self.element_var is not None:
            names.append(self.element_var)
        if self.text_var is not None:
            names.append(self.text_var)
        for child in self.children:
            names.extend(child.variables())
        return list(dict.fromkeys(names))


# -- clauses --------------------------------------------------------------------


@dataclass(frozen=True)
class PatternClause:
    """``pattern IN source``."""

    pattern: PatternElement
    source: str


@dataclass(frozen=True)
class ConditionClause:
    """A boolean condition over bound variables."""

    expr: Expr


Clause = Union[PatternClause, ConditionClause]


# -- templates --------------------------------------------------------------------


AGGREGATE_KINDS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateRef:
    """``kind($var)`` inside a CONSTRUCT template: aggregate over the
    enclosing element's group (SQL-equivalent query features, paper §4)."""

    kind: str
    var: str

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise ValueError(f"unknown aggregate {self.kind!r}")


@dataclass(frozen=True)
class TemplateElement:
    """One CONSTRUCT template element."""

    tag: str
    attributes: tuple[tuple[str, "str | Var"], ...] = ()
    children: tuple["TemplateElement | Var | str | AggregateRef", ...] = ()

    def variables(self) -> list[str]:
        names: list[str] = []
        for _, value in self.attributes:
            if isinstance(value, Var):
                names.append(value.name)
        for child in self.children:
            if isinstance(child, Var):
                names.append(child.name)
            elif isinstance(child, AggregateRef):
                names.append(child.var)
            elif isinstance(child, TemplateElement):
                names.extend(child.variables())
        return list(dict.fromkeys(names))


@dataclass(frozen=True)
class OrderSpec:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Query:
    """A complete XML-QL query."""

    clauses: tuple[Clause, ...]
    construct: TemplateElement
    order_by: tuple[OrderSpec, ...] = ()
    limit: int | None = None

    @property
    def pattern_clauses(self) -> tuple[PatternClause, ...]:
        return tuple(c for c in self.clauses if isinstance(c, PatternClause))

    @property
    def condition_clauses(self) -> tuple[ConditionClause, ...]:
        return tuple(c for c in self.clauses if isinstance(c, ConditionClause))

    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(c.source for c in self.pattern_clauses))

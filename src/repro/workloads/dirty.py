"""Error injection: the anomaly classes of section 3.2, on demand.

"Values may be truncated, abbreviated, incorrect or missing" — the
:class:`DirtMachine` injects exactly those, deterministically from a
seed, so cleaning experiments know the ground truth they are measured
against.
"""

from __future__ import annotations

import random
import string

_ABBREVIATIONS = {
    "street": "St.",
    "avenue": "Ave",
    "boulevard": "Blvd",
    "road": "Rd.",
    "drive": "Dr",
    "north": "N",
    "south": "S",
    "east": "E",
    "west": "W",
    "apartment": "Apt",
    "suite": "Ste",
}


class DirtMachine:
    """Seeded injector of realistic data anomalies."""

    def __init__(self, seed: int = 42):
        self.rng = random.Random(seed)

    # -- single-string corruptions ---------------------------------------

    def typo(self, value: str) -> str:
        """One random edit: substitution, deletion, insertion or swap."""
        if not value:
            return value
        kind = self.rng.choice(("substitute", "delete", "insert", "swap"))
        position = self.rng.randrange(len(value))
        letters = string.ascii_lowercase
        if kind == "substitute":
            return value[:position] + self.rng.choice(letters) + value[position + 1 :]
        if kind == "delete":
            return value[:position] + value[position + 1 :]
        if kind == "insert":
            return value[:position] + self.rng.choice(letters) + value[position:]
        if position == len(value) - 1:
            position -= 1
        if position < 0:
            return value
        return (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )

    def truncate(self, value: str, keep_at_least: int = 3) -> str:
        """Chop the tail off a value (legacy field-width limits)."""
        if len(value) <= keep_at_least:
            return value
        cut = self.rng.randrange(keep_at_least, len(value))
        return value[:cut]

    def abbreviate(self, value: str) -> str:
        """Replace expandable words with their legacy abbreviations."""
        tokens = value.split()
        replaced = [
            _ABBREVIATIONS.get(token.lower(), token) for token in tokens
        ]
        return " ".join(replaced)

    def case_mangle(self, value: str) -> str:
        """ALL CAPS or all lower — legacy mainframe style."""
        return value.upper() if self.rng.random() < 0.5 else value.lower()

    def maybe(self, probability: float) -> bool:
        return self.rng.random() < probability

    def corrupt(self, value: str, intensity: float) -> str:
        """Apply each corruption independently with probability ``intensity``."""
        if self.maybe(intensity):
            value = self.typo(value)
        if self.maybe(intensity / 2):
            value = self.abbreviate(value)
        if self.maybe(intensity / 3):
            value = self.case_mangle(value)
        if self.maybe(intensity / 4):
            value = self.truncate(value)
        return value

    # -- structural corruptions --------------------------------------------

    def legacy_code(self, prefix: str = "ACCT") -> str:
        """A legacy identifier of the kind that hides in text fields."""
        return f"{prefix}-{self.rng.randrange(1000, 9999)}"

    def swap_name_order(self, full_name: str) -> str:
        """'First Last' -> 'Last, First' (the translation problem)."""
        parts = full_name.split()
        if len(parts) < 2:
            return full_name
        return f"{parts[-1]}, {' '.join(parts[:-1])}"

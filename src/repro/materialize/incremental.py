"""Incremental view maintenance: refresh by draining change feeds.

The :class:`IncrementalMaterializer` keeps, for each maintained mediated
view, the raw records of every fragment the view reads plus a
**high-water sequence number** per source.  A refresh drains each
source's :class:`~repro.cdc.changelog.ChangeLog` past the high water,
patches the kept records in place (:mod:`repro.cdc.scope`), and rebuilds
the view's elements *locally* — no network calls, cost proportional to
the delta, not the base.  Three maintenance modes, chosen per view at
:meth:`maintain` time:

* ``groups`` — single-fragment aggregate views (flat construct
  template): changes propagate through the delta algebra
  (:class:`~repro.cdc.delta.DeltaSelect` for residual conditions, then
  :class:`~repro.cdc.delta.DeltaGroups` retraction states), so the
  per-group aggregate states update in O(delta);
* ``rows`` — any view whose fragments are all non-dependent,
  CDC-enabled and key-addressable: base records are patched in place
  and the plan (joins, residual selects, sort, construct, limit) is
  re-run locally over them through the engine's own
  :class:`~repro.optimizer.planner.PlanBuilder` — the same code path a
  fresh execution takes, so output is bit-identical;
* ``full`` — everything else (dependent fragments, views-over-views,
  feeds without declared keys): a refresh re-runs the view query when
  any upstream feed moved.

Any delta the shapes cannot express — a ``reset`` record, a
:class:`~repro.cdc.delta.DeltaUnsupported` retraction, a patch with
ambiguous positions, a catalog epoch change — falls back to a full
rebuild.  Falling back is always correct; propagating wrongly never is.

This module never imports the engine: it is handed one via
:meth:`bind` and uses only its public-ish surface (``catalog``,
``builder``, ``clock``, ``cost_model``, ``materializer``,
``cdc_stats``, ``_compile`` and the two CDC execution helpers), so
``core.engine`` can import it without a cycle.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.merge import collect_aggregates, flat_template
from repro.algebra.tuples import BindingTuple
from repro.cdc.delta import DeltaGroups, DeltaUnsupported, RowDelta, select_deltas
from repro.cdc.scope import change_key_var, fragment_patch, patch_records
from repro.errors import MediationError
from repro.materialize.policy import RefreshPolicy
from repro.mediator.schema import ViewDef
from repro.optimizer.decomposer import DecomposedQuery, FragmentUnit
from repro.query.exprs import compile_predicate
from repro.query.translate import template_to_construct
from repro.xmldm.values import Record


class _LocalContext:
    """An ExecutionContext over already-held records: zero network.

    Serves each fragment unit from the maintained base records, so the
    plan builder and operators run exactly as they would against live
    sources — same ordering inputs, same row streams — without a single
    remote call.
    """

    def __init__(self, records_by_unit: dict[int, list[Record]]):
        self._records = records_by_unit

    def fetch_fragment(self, unit, params=None):
        return list(self._records[id(unit)])

    def fetch_fragment_batch(self, unit, param_sets):
        raise MediationError("dependent fragments are not maintained")

    def fetch_view(self, view):
        raise MediationError("views over views are not maintained")


class UnitState:
    """One fragment unit's maintained base records plus its key wiring."""

    __slots__ = ("unit", "key_field", "key_var", "records")

    def __init__(self, unit: FragmentUnit, key_field: str, key_var: str):
        self.unit = unit
        self.key_field = key_field
        self.key_var = key_var
        self.records: list[Record] = []

    @property
    def relation(self) -> str:
        return self.unit.fragment.accesses[0].relation


class MaintainedView:
    """One incrementally maintained mediated view."""

    def __init__(self, name: str, query, decomposed: DecomposedQuery | None,
                 epoch: Any, mode: str, units: list[UnitState]):
        self.name = name
        self.query = query
        self.decomposed = decomposed
        self.epoch = epoch
        self.mode = mode  # groups | rows | full
        self.units = units
        #: source name -> last applied change sequence number
        self.high_water: dict[str, int] = {}
        self.groups: DeltaGroups | None = None
        self.template = None
        self.elements: list = []
        self.delta_refreshes = 0
        self.full_rebuilds = 0

    def summary(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "delta_refreshes": self.delta_refreshes,
            "full_rebuilds": self.full_rebuilds,
            "base_rows": sum(len(us.records) for us in self.units),
            "elements": len(self.elements),
        }


class IncrementalMaterializer:
    """Owns the maintained views; bound to one engine."""

    def __init__(self) -> None:
        self.engine = None
        self.views: dict[str, MaintainedView] = {}

    def bind(self, engine) -> "IncrementalMaterializer":
        self.engine = engine
        return self

    # -- setup ------------------------------------------------------------

    def maintain(self, name: str) -> MaintainedView:
        """Start maintaining one mediated view incrementally.

        Classifies the view's best maintenance mode, performs the
        initial (network-charged) load, and publishes the elements into
        the engine's materialization manager under a *manual* refresh
        policy — the view stays fresh until maintenance says otherwise.
        """
        engine = self._engine()
        resolved = engine.catalog.resolve(name)
        if not isinstance(resolved, ViewDef):
            raise MediationError(f"{name!r} is not a mediated view")
        view = self._plan_view(name, resolved)
        self._full_load(view)
        self._publish(view)
        self.views[name] = view
        return view

    def drop(self, name: str) -> None:
        del self.views[name]

    # -- refresh ----------------------------------------------------------

    def refresh(self) -> dict[str, str]:
        """Bring every maintained view up to its feeds' latest sequence.

        Returns ``{view name: "delta" | "rebuild"}`` for the views that
        actually moved; in-sync views are skipped at the cost of one
        sequence comparison.
        """
        engine = self._engine()
        outcomes: dict[str, str] = {}
        with engine.tracer.span(
            "maintenance", views=len(self.views)
        ) as span:
            for view in self.views.values():
                with engine.tracer.span(
                    "view_refresh", name=view.name, view=view.name,
                    mode=view.mode,
                ) as view_span:
                    outcome = self._refresh_one(view)
                    if view_span.recording:
                        view_span.set(outcome=outcome or "in_sync")
                if outcome is not None:
                    outcomes[view.name] = outcome
            if span.recording:
                span.set(refreshed=len(outcomes))
        return outcomes

    def lag(self, now_ms: float) -> dict[str, dict[str, Any]]:
        """Per-view freshness: sequence distance and staleness window.

        ``seq_lag`` totals, across the view's sources, how many change
        records are past the view's high water; ``staleness_ms`` is the
        virtual-time age of the *oldest* unapplied change (0 when in
        sync) — the window during which the maintained answer has been
        behind the sources.
        """
        report: dict[str, dict[str, Any]] = {}
        for view in self.views.values():
            seq_lag = 0
            oldest: float | None = None
            for source, log in self._feeds(view):
                high_water = view.high_water.get(source, 0)
                seq_lag += log.latest_seq - high_water
                for change in log.since(high_water):
                    if oldest is None or change.at_ms < oldest:
                        oldest = change.at_ms
                    break  # the feed is ordered: first pending is oldest
            report[view.name] = {
                "mode": view.mode,
                "seq_lag": seq_lag,
                "staleness_ms": (now_ms - oldest) if oldest is not None else 0.0,
                "delta_refreshes": view.delta_refreshes,
                "full_rebuilds": view.full_rebuilds,
            }
        return report

    # -- classification ---------------------------------------------------

    def _plan_view(self, name: str, resolved: ViewDef) -> MaintainedView:
        engine = self._engine()
        query = resolved.query
        decomposed = engine._compile(query)
        units: list[UnitState] = []
        mode = "rows"
        for unit in decomposed.units:
            state = self._unit_state(unit)
            if state is None:
                mode = "full"
                units = []
                break
            units.append(state)
        view = MaintainedView(name, query, decomposed,
                              engine.catalog.version, mode, units)
        if (
            mode == "rows"
            and len(units) == 1
            and not query.order_by
            and query.limit is None
        ):
            template = template_to_construct(query.construct)
            if collect_aggregates(template) and flat_template(template):
                view.mode = "groups"
                view.template = template
        return view

    def _unit_state(self, unit) -> UnitState | None:
        """The unit's maintenance wiring, or None when unmaintainable."""
        if not isinstance(unit, FragmentUnit) or unit.dependent:
            return None
        fragment = unit.fragment
        if len(fragment.accesses) != 1 or fragment.input_vars:
            return None
        log = unit.source.changelog
        if log is None:
            return None
        relation = fragment.accesses[0].relation
        key_field = log.key_field(relation)
        if key_field is None:
            return None
        key_var = change_key_var(fragment, relation, key_field)
        if key_var is None or key_var not in fragment.output_variables():
            return None
        return UnitState(unit, key_field, key_var)

    # -- loading ----------------------------------------------------------

    def _full_load(self, view: MaintainedView) -> None:
        """Fetch the view from live sources (network charged), reset state."""
        engine = self._engine()
        if view.mode == "full":
            view.elements = engine._cdc_execute(view.query)
        else:
            context = engine._cdc_fetch_context()
            for state in view.units:
                state.records = list(context.fetch_fragment(state.unit))
            engine.cdc_stats.absorb(context.stats)
            self._rebuild_output(view)
        # captured *after* the fetch: everything at or below latest_seq
        # is already reflected in the data just read (the virtual-time
        # world is single-threaded, nothing lands mid-fetch)
        view.high_water = {
            source: log.latest_seq for source, log in self._feeds(view)
        }

    def _feeds(self, view: MaintainedView):
        """(source name, changelog) pairs the view depends on."""
        engine = self._engine()
        if view.mode != "full":
            seen: dict[str, Any] = {}
            for state in view.units:
                log = state.unit.source.changelog
                if log is not None:
                    seen[state.unit.source.name] = log
            return list(seen.items())
        # full mode: the decomposition may hide sources behind nested
        # views, so depend on every CDC-enabled source conservatively
        return [
            (source.name, source.changelog)
            for source in engine.catalog.registry
            if source.changelog is not None
        ]

    def _rebuild_output(self, view: MaintainedView) -> None:
        """Recompute the view's elements from the maintained base rows."""
        engine = self._engine()
        if view.mode == "groups":
            filtered = self._filtered_rows(view)
            groups = DeltaGroups(view.template)
            for row in filtered:
                groups.observe(row)
            view.groups = groups
            view.elements = groups.finalize(filtered)
            return
        context = _LocalContext(
            {id(state.unit): state.records for state in view.units}
        )
        plan = engine.builder.build(view.decomposed, context)
        view.elements = plan.results()

    def _filtered_rows(self, view: MaintainedView) -> list[BindingTuple]:
        predicates = [
            compile_predicate(condition)
            for condition in view.decomposed.residual_conditions
        ]
        rows = [
            BindingTuple(record.as_dict())
            for record in view.units[0].records
        ]
        return [
            row for row in rows
            if all(predicate(row) for predicate in predicates)
        ]

    def _publish(self, view: MaintainedView) -> None:
        """Expose the elements through the materialization manager."""
        manager = self._engine().materializer
        if manager is not None:
            manager.materialize_view(
                view.name, lambda: view.elements, RefreshPolicy.manual()
            )

    # -- the refresh algorithm --------------------------------------------

    def _refresh_one(self, view: MaintainedView) -> str | None:
        engine = self._engine()
        feeds = dict(self._feeds(view))
        if all(
            log.latest_seq <= view.high_water.get(source, 0)
            for source, log in feeds.items()
        ):
            return None  # in sync
        if view.mode == "full" or engine.catalog.version != view.epoch:
            return self._full_rebuild(view)

        stats = engine.cdc_stats
        group_deltas: list[RowDelta] = []
        delta_rows = 0
        changes = 0
        # stage the patches; nothing is applied until every change fits
        staged: dict[int, list[Record]] = {
            id(state): list(state.records) for state in view.units
        }
        for state in view.units:
            log = state.unit.source.changelog
            high_water = view.high_water.get(state.unit.source.name, 0)
            for change in log.since(high_water):
                if change.relation != state.relation:
                    continue
                if change.op == "reset":
                    return self._full_rebuild(view)
                patch = fragment_patch(state.unit.fragment, change,
                                       state.key_field)
                if patch is None:
                    return self._full_rebuild(view)
                patched = patch_records(staged[id(state)], patch)
                if patched is None:
                    return self._full_rebuild(view)
                staged[id(state)] = patched
                changes += 1
                delta_rows += max(1, len(patch.rows) + len(patch.before_rows))
                if view.mode == "groups":
                    group_deltas.extend(_patch_deltas(patch))

        if view.mode == "groups":
            filtered = select_deltas(
                group_deltas,
                [
                    compile_predicate(condition)
                    for condition in view.decomposed.residual_conditions
                ],
            )
            try:
                view.groups.apply_delta(filtered)
            except DeltaUnsupported:
                return self._full_rebuild(view)

        for state in view.units:
            state.records = staged[id(state)]
        if view.mode == "groups":
            try:
                view.elements = view.groups.finalize(self._filtered_rows(view))
            except DeltaUnsupported:
                return self._full_rebuild(view)
        else:
            self._rebuild_output(view)
        # the refresh costs local delta work, never network
        engine.clock.advance(engine.cost_model.local_cost(delta_rows))
        view.high_water = {
            source: log.latest_seq for source, log in feeds.items()
        }
        view.delta_refreshes += 1
        stats.views_delta_refreshed += 1
        stats.changes_applied += changes
        stats.delta_rows_applied += delta_rows
        self._publish(view)
        engine.tracer.event("delta_applied", view=view.name,
                            changes=changes, rows=delta_rows)
        return "delta"

    def _full_rebuild(self, view: MaintainedView) -> str:
        """The fallback: re-resolve, re-plan, re-fetch, re-publish."""
        engine = self._engine()
        resolved = engine.catalog.resolve(view.name)
        if not isinstance(resolved, ViewDef):
            raise MediationError(
                f"maintained view {view.name!r} no longer resolves to a view"
            )
        fresh = self._plan_view(view.name, resolved)
        fresh.delta_refreshes = view.delta_refreshes
        fresh.full_rebuilds = view.full_rebuilds + 1
        self._full_load(fresh)
        self.views[view.name] = fresh
        self._publish(fresh)
        engine.cdc_stats.views_full_rebuilt += 1
        engine.tracer.event("full_rebuild", view=view.name, mode=fresh.mode)
        return "rebuild"

    # -- internals --------------------------------------------------------

    def _engine(self):
        if self.engine is None:
            raise MediationError("IncrementalMaterializer is not bound")
        return self.engine

    def summary(self) -> dict[str, Any]:
        return {name: view.summary() for name, view in self.views.items()}


def _patch_deltas(patch) -> list[RowDelta]:
    """A fragment patch as row deltas at the scan's output level."""
    rows = [BindingTuple(record.as_dict()) for record in patch.rows]
    before = [BindingTuple(record.as_dict()) for record in patch.before_rows]
    if patch.op == "insert":
        return [RowDelta("insert", row=row) for row in rows]
    if patch.op == "delete":
        return [RowDelta("delete", before=row) for row in before]
    if len(before) == len(rows):
        return [
            RowDelta("update", row=after, before=prior)
            for prior, after in zip(before, rows)
        ]
    if not rows:
        return [RowDelta("delete", before=row) for row in before]
    # patch_records() already rejected every other asymmetric shape
    return [RowDelta("delete", before=row) for row in before] + [
        RowDelta("insert", row=row) for row in rows
    ]


__all__ = ["IncrementalMaterializer", "MaintainedView", "UnitState"]

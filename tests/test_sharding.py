"""Sharded scatter-gather execution: routing, merging, bit-identity.

The load-bearing claim is in the property test: for every query shape
the merge algebra covers, a :class:`ShardRouter` over a key-range
partitioned deployment returns **bit-identical** elements, completeness
annotations and row counts to one engine over the unsharded data —
across shard counts, fragment caching, injected faults, and vectorized
execution.
"""

from __future__ import annotations

import pytest

from repro.algebra.construct import build_elements
from repro.algebra.merge import (
    PartialGroups,
    dedup_rows,
    merge_sorted,
    rows_wire_size,
    sort_rows,
    topk_rows,
)
from repro.algebra.tuples import BindingTuple
from repro.algebra.vector import ColumnStats, shred_records, TableStats
from repro.core.engine import NimbleEngine
from repro.core.loadbalance import EngineCluster
from repro.core.sharding import ShardRouter, retarget
from repro.materialize.matching import implies
from repro.mediator.catalog import Catalog
from repro.optimizer.routing import (
    MERGE_DISTINCT,
    MERGE_ORDERED,
    MERGE_PARTIAL_AGGREGATE,
    MERGE_ROW_UNION,
    MERGE_TOPK,
    merge_strategy,
    route,
    stats_admits,
)
from repro.query.exprs import compile_sort_key
from repro.query.parser import parse_query
from repro.query.translate import template_to_construct
from repro.resilience import FaultModel, ResiliencePolicy, RetryPolicy
from repro.simtime import SimClock
from repro.sources.base import NetworkModel
from repro.sources.registry import SourceRegistry
from repro.sources.relational import RelationalSource
from repro.sources.sharding import (
    KeyRange,
    ShardMap,
    make_ranges,
    partition_registry,
    range_admits,
)
from repro.sql.database import Database
from repro.xmldm.serializer import serialize
from repro.xmldm.values import Record

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


# -- deployment builders ------------------------------------------------------


def seeded_rows(n: int, seed: int = 7) -> list[tuple[int, int, int]]:
    """Deterministic (k, grp, v) rows, clustered by k (the shard key)."""
    return [(k, (k * seed) % 5, (k * k * seed) % 23) for k in range(n)]


def build_catalog(rows, faults=None, network=None):
    db = Database()
    db.execute(
        "CREATE TABLE t (k INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)"
    )
    db.insert_rows("t", rows)
    registry = SourceRegistry(SimClock())
    source = RelationalSource("s", db, network=network)
    if faults is not None:
        source.faults = faults
    registry.register(source)
    catalog = Catalog(registry)
    catalog.map_relation("items", "s", "t")
    return catalog


def build_engine(rows, faults=None, network=None, **engine_kw) -> NimbleEngine:
    return NimbleEngine(build_catalog(rows, faults, network), **engine_kw)


def build_router(rows, n_shards, faults=None, max_parallel_shards=16,
                 network=None, **engine_kw) -> ShardRouter:
    engine = build_engine(rows, faults, network, **engine_kw)
    deployment = partition_registry(
        engine.catalog.registry, {"s": "k"}, n_shards
    )
    return ShardRouter(engine, deployment,
                       max_parallel_shards=max_parallel_shards)


def rendered(result) -> list[str]:
    return [serialize(element) for element in result.elements]


QUERIES = [
    # plain scan, ordered
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items" '
    'CONSTRUCT <r>$k</r> ORDER BY $k',
    # filter + ordered-merge with descending sort
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $v > 5 '
    'CONSTRUCT <r k=$k>$v</r> ORDER BY $v DESC',
    # partial aggregates: sum/count/min/max/avg per group
    'WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "items" '
    'CONSTRUCT <g k=$g><total>sum($v)</total><n>count($v)</n>'
    '<lo>min($v)</lo><hi>max($v)</hi><mean>avg($v)</mean></g>',
    # top-K of top-Ks
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $v > 2 '
    'CONSTRUCT <r>$k</r> ORDER BY $v DESC LIMIT 4',
    # distinct representatives
    'WHERE <i><k>$k</k><grp>$g</grp></i> IN "items" CONSTRUCT <d>$g</d>',
    # key-range predicate (exercises pruning inside the sweep)
    'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 12 '
    'CONSTRUCT <r>$k</r>',
]


# -- merge algebra ------------------------------------------------------------


class TestMergeAlgebra:
    ROWS = [
        BindingTuple({"g": i % 3, "v": (i * 7) % 11, "k": i})
        for i in range(30)
    ]

    def keys(self, descending=False):
        query = parse_query(
            'WHERE <i><v>$v</v></i> IN "x.y" CONSTRUCT <r>$v</r> '
            f'ORDER BY $v{" DESC" if descending else ""}, $k'
        )
        return [
            (compile_sort_key(spec.expr), spec.descending)
            for spec in query.order_by
        ]

    def test_merge_sorted_equals_stable_sort_of_concatenation(self):
        keys = self.keys()
        streams = [
            sort_rows(self.ROWS[:10], keys),
            sort_rows(self.ROWS[10:18], keys),
            sort_rows(self.ROWS[18:], keys),
        ]
        merged = merge_sorted(streams, keys)
        reference = sort_rows(
            streams[0] + streams[1] + streams[2], keys
        )
        assert [r.as_dict() for r in merged] == [
            r.as_dict() for r in reference
        ]

    def test_topk_of_topks_is_exact(self):
        # adversarial split: every shard holds some of the global best
        keys = self.keys(descending=True)
        chunks = [self.ROWS[i::4] for i in range(4)]
        k = 5
        candidates = [topk_rows(chunk, keys, k, ("v",)) for chunk in chunks]
        got = dedup_rows(merge_sorted(candidates, keys), ("v",))[:k]
        want = dedup_rows(sort_rows(self.ROWS, keys), ("v",))[:k]
        assert [r.get("v") for r in got] == [r.get("v") for r in want]

    def test_partial_groups_match_build_elements(self):
        template = template_to_construct(parse_query(
            'WHERE <i><g>$g</g><v>$v</v></i> IN "x.y" '
            'CONSTRUCT <out g=$g><s>sum($v)</s><c>count($v)</c>'
            '<lo>min($v)</lo><hi>max($v)</hi><m>avg($v)</m></out>'
        ).construct)
        direct = build_elements(template, self.ROWS)
        chunks = [self.ROWS[:7], self.ROWS[7:19], self.ROWS[19:]]
        partials = []
        for chunk in chunks:
            groups = PartialGroups(template)
            for row in chunk:
                groups.observe(row)
            partials.append(groups)
        gathered = PartialGroups(template)
        for partial in partials:
            gathered.merge(partial)
        assert ([serialize(e) for e in gathered.finalize()]
                == [serialize(e) for e in direct])

    def test_partial_state_is_smaller_than_rows_on_the_wire(self):
        template = template_to_construct(parse_query(
            'WHERE <i><g>$g</g><v>$v</v></i> IN "x.y" '
            'CONSTRUCT <out g=$g><s>sum($v)</s></out>'
        ).construct)
        groups = PartialGroups(template)
        for row in self.ROWS:
            groups.observe(row)
        state_bytes, _ = groups.wire_size()
        row_bytes, _ = rows_wire_size(self.ROWS)
        assert state_bytes < row_bytes


# -- routing ------------------------------------------------------------------


class TestRouting:
    def compile(self, engine, text):
        return engine._compile(text)

    def shard_map(self, n=4):
        ranges = make_ranges(range(24), n)
        return {"s": ShardMap("s", "k", ranges, ("t",))}

    def test_merge_strategy_decision_table(self):
        cases = {
            'CONSTRUCT <r>$k</r> ORDER BY $k': MERGE_ORDERED,
            'CONSTRUCT <r>$k</r> ORDER BY $k LIMIT 3': MERGE_TOPK,
            'CONSTRUCT <g k=$g><t>sum($v)</t></g>': MERGE_PARTIAL_AGGREGATE,
            'CONSTRUCT <d>$g</d>': MERGE_DISTINCT,
            'CONSTRUCT <g k=$g><t>sum($v)</t></g> ORDER BY $g': MERGE_ORDERED,
            'CONSTRUCT <o><i>$k</i><n><v>$v</v></n></o>': MERGE_ROW_UNION,
        }
        prefix = ('WHERE <i><k>$k</k><grp>$g</grp><v>$v</v></i> IN "x.y" ')
        for tail, expected in cases.items():
            assert merge_strategy(parse_query(prefix + tail)) == expected, tail

    def test_unpartitioned_query_routes_to_coordinator(self):
        engine = build_engine(seeded_rows(24))
        decomposed = self.compile(engine, QUERIES[0])
        decision = route(decomposed, {})
        assert not decision.scatter
        assert "no partitioned fragments" in decision.reason

    def test_range_pruning_selects_only_matching_shards(self):
        engine = build_engine(seeded_rows(24))
        decomposed = self.compile(
            engine,
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 18 '
            'CONSTRUCT <r>$k</r>',
        )
        decision = route(decomposed, self.shard_map(4))
        assert decision.scatter
        assert decision.key_var == "k"
        assert len(decision.selected) == 1
        assert len(decision.pruned) == 3
        assert "contradicts" in decision.pruned[0].reason

    def test_equality_predicate_prunes_to_one_shard(self):
        engine = build_engine(seeded_rows(24))
        decomposed = self.compile(
            engine,
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k = 3 '
            'CONSTRUCT <r>$v</r>',
        )
        decision = route(decomposed, self.shard_map(4))
        assert decision.scatter
        assert len(decision.selected) == 1

    def test_stats_bounds_prune_inside_nominal_ranges(self):
        engine = build_engine(seeded_rows(24))
        decomposed = self.compile(
            engine,
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k > 20 '
            'CONSTRUCT <r>$v</r>',
        )
        # nominal last range is unbounded, but observed keys stop at 23;
        # a bounds callback reporting [18, 19] skips even that shard
        decision = route(
            decomposed, self.shard_map(4),
            stats_bounds=lambda shard, fragment, var: (18, 19),
        )
        assert decision.scatter
        assert decision.selected == ()
        assert all("stats" in p.reason or "contradicts" in p.reason
                   for p in decision.pruned)

    def test_stats_admits_uses_closed_bounds(self):
        conditions = [parse_query(
            'WHERE <i><k>$k</k></i> IN "x.y", $k >= 10 CONSTRUCT <r>$k</r>'
        ).condition_clauses[0].expr]
        assert stats_admits(10, 20, "k", conditions)     # boundary included
        assert not stats_admits(3, 9, "k", conditions)   # entirely below
        assert stats_admits(3, 10, "k", conditions)      # max touches bound

    def test_range_admits_string_keys(self):
        condition = parse_query(
            'WHERE <p><sku>$s</sku></p> IN "x.y", $s >= "m" '
            'CONSTRUCT <r>$s</r>'
        ).condition_clauses[0].expr
        assert not range_admits(KeyRange("a", "f"), "s", [condition])
        assert range_admits(KeyRange("f", None), "s", [condition])
        # implication machinery itself understands string bounds
        assert implies(condition, parse_query(
            'WHERE <p><sku>$s</sku></p> IN "x.y", $s >= "f" '
            'CONSTRUCT <r>$s</r>'
        ).condition_clauses[0].expr)


# -- the router end to end ----------------------------------------------------


class TestShardRouter:
    def test_scatter_prunes_and_counts(self):
        rows = seeded_rows(32)
        router = build_router(rows, 4)
        result = router.query(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 24 '
            'CONSTRUCT <r>$k</r>'
        )
        baseline = build_engine(rows).query(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 24 '
            'CONSTRUCT <r>$k</r>'
        )
        assert rendered(result) == rendered(baseline)
        counters = result.stats.shard_counters()
        assert counters["scatter_queries"] == 1
        assert counters["shards_executed"] == 1
        assert counters["shards_pruned"] == 3
        assert "Routing(scatter" in result.stats.plan_text

    def test_coordinator_fallback_for_unsharded_names(self):
        rows = seeded_rows(16)

        def with_side_table(faults=None, **kw):
            catalog = build_catalog(rows)
            side = Database()
            side.execute("CREATE TABLE w (k INTEGER PRIMARY KEY, v INTEGER)")
            side.insert_rows("w", [(k, v) for k, _, v in rows])
            catalog.registry.register(RelationalSource("u", side))
            catalog.map_relation("wide", "u", "w")
            return NimbleEngine(catalog, **kw)

        engine = with_side_table()
        deployment = partition_registry(
            engine.catalog.registry, {"s": "k"}, 2
        )
        router = ShardRouter(engine, deployment)
        query = ('WHERE <i><k>$k</k><v>$v</v></i> IN "wide" '
                 'CONSTRUCT <r>$k</r> ORDER BY $k')
        result = router.query(query)
        assert result.stats.coordinator_fallbacks == 1
        assert rendered(result) == rendered(with_side_table().query(query))
        assert "coordinator" in result.stats.plan_text

    def test_compile_once_reuses_the_plan_cache(self):
        router = build_router(seeded_rows(16), 2)
        router.query(QUERIES[0])
        second = router.query(QUERIES[0])
        assert second.stats.plan_cache_hits == 1

    def test_explain_renders_routing_decision(self):
        router = build_router(seeded_rows(16), 2)
        text = router.explain(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 12 '
            'CONSTRUCT <r>$k</r>'
        )
        assert "Routing(scatter" in text
        assert "pruned shard" in text

    def test_scatter_wave_costs_max_not_sum(self):
        rows = seeded_rows(64)
        network = NetworkModel(latency_ms=10.0, per_row_ms=0.1)
        serial = build_router(rows, 4, max_parallel_shards=1,
                              network=network)
        wide = build_router(rows, 4, network=network)
        q = QUERIES[0]
        serial_result = serial.query(q)
        wide_result = wide.query(q)
        assert rendered(serial_result) == rendered(wide_result)
        assert (wide_result.stats.elapsed_virtual_ms
                < serial_result.stats.elapsed_virtual_ms)

    def test_shard_caches_are_scoped_and_effective(self):
        router = build_router(seeded_rows(24), 2,
                              fragment_cache_bytes=200_000)
        router.query(QUERIES[0])
        warm = router.query(QUERIES[0])
        assert warm.stats.fragment_cache_hits >= 2
        scopes = {
            shard.fragment_cache.scope for shard in router.shard_engines
        }
        assert scopes == {"shard0", "shard1"}


def _retrying() -> ResiliencePolicy:
    # enough attempts that every call eventually succeeds under the
    # low fault rates below — faults cost time, never results
    return ResiliencePolicy(retry=RetryPolicy(max_attempts=8), breaker=None)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestBitEquivalenceProperty:
    @given(
        n_rows=st.integers(4, 48),
        seed=st.integers(1, 50),
        n_shards=st.sampled_from([1, 2, 4, 8]),
        query=st.sampled_from(QUERIES),
        cache=st.booleans(),
        vectorized=st.booleans(),
        faulty=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_equals_unsharded(self, n_rows, seed, n_shards, query,
                                      cache, vectorized, faulty):
        rows = seeded_rows(n_rows, seed)
        kwargs = dict(
            fragment_cache_bytes=300_000 if cache else 0,
            vectorized=vectorized,
        )
        if faulty:
            kwargs["resilience"] = _retrying()

        def fault_model():
            return (FaultModel(failure_rate=0.08, seed=seed)
                    if faulty else None)

        baseline = build_engine(rows, fault_model(), **kwargs)
        router = build_router(rows, n_shards, fault_model(), **kwargs)
        expected = baseline.query(query)
        got = router.query(query)
        assert rendered(got) == rendered(expected)
        assert len(got.elements) == len(expected.elements)
        assert got.completeness.complete == expected.completeness.complete
        assert (got.completeness.missing_sources
                == expected.completeness.missing_sources)


# -- retarget -----------------------------------------------------------------


class TestRetarget:
    def test_retarget_swaps_sources_shares_fragments(self):
        router = build_router(seeded_rows(16), 2)
        decomposed = router.engine._compile(QUERIES[0])
        shard0 = retarget(decomposed, router.deployment.registries[0])
        assert shard0.units[0].fragment is decomposed.units[0].fragment
        assert (shard0.units[0].source
                is router.deployment.registries[0].get("s"))
        assert shard0.units[0].source is not decomposed.units[0].source


# -- column statistics --------------------------------------------------------


class TestColumnStatistics:
    def test_shredding_observes_bounds_distinct_and_nulls(self):
        stats = TableStats()
        shred_records(
            [Record({"k": 1, "v": 10}), Record({"k": 2, "v": 30}),
             Record({"k": 2, "v": 20})],
            stats,
        )
        column = stats.column("k")
        assert (column.minimum, column.maximum) == (1, 2)
        assert column.distinct == 2
        v = stats.column("v")
        assert v.bounds() == (10, 30)

    def test_selectivity_equality_and_range(self):
        column = ColumnStats()
        for value in range(0, 100):
            column.observe(value)
        assert column.selectivity("=", 5) == pytest.approx(1 / 100)
        assert column.selectivity("<", 50) == pytest.approx(50 / 99, rel=0.02)
        assert column.selectivity(">", 99) == pytest.approx(1 / 100)
        assert column.selectivity("<", "zed") is None

    def test_vectorized_scan_populates_engine_stats(self):
        engine = build_engine(seeded_rows(20), vectorized=True,
                              column_statistics=True)
        engine.query(QUERIES[0])
        tables = engine.column_stats.tables
        assert tables, "full scan should have populated statistics"
        (table,) = tables.values()
        assert table.column("k").bounds() == (0, 19)

    def test_conditioned_scans_do_not_pollute_statistics(self):
        engine = build_engine(seeded_rows(20), vectorized=True,
                              column_statistics=True)
        engine.query(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k >= 15 '
            'CONSTRUCT <r>$k</r>'
        )
        assert not engine.column_stats.tables

    def test_stats_based_shard_skipping_end_to_end(self):
        rows = seeded_rows(32)
        router = build_router(rows, 4, vectorized=True,
                              column_statistics=True)
        # warm-up full scan populates each shard's observed key bounds
        router.query(QUERIES[0])
        result = router.query(
            'WHERE <i><k>$k</k><v>$v</v></i> IN "items", $k > 100 '
            'CONSTRUCT <r>$k</r>'
        )
        assert rendered(result) == []
        counters = result.stats.shard_counters()
        # the last shard's nominal range is unbounded above, so only
        # observed statistics can rule it out
        assert counters["shards_stats_skipped"] >= 1
        assert counters["shards_executed"] == 0

    def test_cost_model_prefers_observed_selectivity(self):
        engine = build_engine(
            [(k, 0, k) for k in range(100)],
            vectorized=True, column_statistics=True,
        )
        narrow = ('WHERE <i><k>$k</k><v>$v</v></i> IN "items", $v > 95 '
                  'CONSTRUCT <r>$k</r>')
        source = engine.catalog.registry.get("s")
        fragment = engine._compile(narrow).units[0].fragment
        folklore = engine.cost_model.estimate_rows(fragment, source)
        engine.query(QUERIES[0])  # ANALYZE warm-up
        informed = engine.cost_model.estimate_rows(fragment, source)
        # folklore says 30% for ">"; the data says ~4%
        assert informed < folklore


# -- consistent-hash dispatch -------------------------------------------------


class TestConsistentHash:
    def test_same_query_always_lands_on_the_same_instance(self):
        engine = build_engine(seeded_rows(12))
        cluster = EngineCluster(engine, instances=4,
                                strategy="consistent_hash")
        chosen = {
            cluster._choose(query_text=QUERIES[0]).name for _ in range(10)
        }
        assert len(chosen) == 1

    def test_assignment_is_deterministic_across_clusters(self):
        rows = seeded_rows(12)
        picks = []
        for _ in range(2):
            cluster = EngineCluster(build_engine(rows), instances=5,
                                    strategy="consistent_hash")
            picks.append([
                cluster._choose(query_text=q).name for q in QUERIES
            ])
        assert picks[0] == picks[1]
        assert len(set(picks[0])) > 1  # different queries spread out

    def test_submit_routes_by_query_hash(self):
        engine = build_engine(seeded_rows(12))
        cluster = EngineCluster(engine, instances=3,
                                strategy="consistent_hash")
        for _ in range(3):
            cluster.submit(QUERIES[0], arrival_ms=0.0)
        served = [i.queries_served for i in cluster.instances]
        assert sorted(served) == [0, 0, 3]

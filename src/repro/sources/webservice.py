"""Wrapper for parameterized web-service endpoints.

Models the class of sources with *binding patterns*: the source answers
only when certain inputs are supplied (a lookup API, a partner's quote
service).  The optimizer must place such a source on the inner side of a
dependent join, which is exactly the "varying query capabilities of
different data sources" problem the paper's conclusion highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import CapabilityError
from repro.sources.base import CapabilityProfile, DataSource, Fragment, NetworkModel
from repro.simtime import SimClock
from repro.xmldm.schema import RecordType
from repro.xmldm.values import Record


@dataclass
class Endpoint:
    """One operation: required inputs, output record type, handler."""

    name: str
    required_inputs: tuple[str, ...]
    record_type: RecordType
    handler: Callable[[Mapping[str, Any]], Iterable[Mapping[str, Any]]]
    estimated_rows: int = 10


class WebServiceSource(DataSource):
    """A source exposing call-only endpoints (binding patterns)."""

    capabilities = CapabilityProfile(
        selections=False,
        projections=False,
        joins=False,
        parameterized=True,
        requires_parameters=True,
        batch_parameters=True,  # endpoints accept many input tuples per call
    )

    def __init__(
        self,
        name: str,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
    ):
        super().__init__(name, clock, network)
        self.endpoints: dict[str, Endpoint] = {}

    def add_endpoint(
        self,
        name: str,
        required_inputs: Iterable[str],
        record_type: RecordType,
        handler: Callable[[Mapping[str, Any]], Iterable[Mapping[str, Any]]],
        estimated_rows: int = 10,
    ) -> None:
        self.endpoints[name] = Endpoint(
            name, tuple(required_inputs), record_type, handler, estimated_rows
        )

    def relations(self) -> dict[str, RecordType]:
        return {name: ep.record_type for name, ep in self.endpoints.items()}

    def required_inputs(self, relation: str) -> tuple[str, ...]:
        endpoint = self.endpoints.get(relation)
        if endpoint is None:
            raise CapabilityError(f"no endpoint {relation!r} on {self.name!r}")
        return endpoint.required_inputs

    def cardinality(self, relation: str) -> int:
        endpoint = self.endpoints.get(relation)
        return endpoint.estimated_rows if endpoint else 0

    def _execute(self, fragment: Fragment, params: dict[str, Any]) -> Iterable[Record]:
        if len(fragment.accesses) != 1:
            raise CapabilityError("web-service fragments call one endpoint")
        access = fragment.accesses[0]
        endpoint = self.endpoints.get(access.relation)
        if endpoint is None:
            raise CapabilityError(
                f"no endpoint {access.relation!r} on {self.name!r}"
            )
        # Inputs arrive keyed by *endpoint field name* via the pattern's
        # bindings: a pattern child <field>$v</field> where $v is an
        # input variable supplies field=params[v].
        field_values: dict[str, Any] = {}
        output_bindings: dict[str, str] = {}
        for child in access.pattern.children:
            if child.text_var is None:
                continue
            if child.text_var in fragment.input_vars:
                if child.text_var not in params:
                    raise CapabilityError(
                        f"missing input ${child.text_var} for {endpoint.name}"
                    )
                field_values[child.tag] = params[child.text_var]
            else:
                output_bindings[child.text_var] = child.tag
        missing = [f for f in endpoint.required_inputs if f not in field_values]
        if missing:
            raise CapabilityError(
                f"endpoint {endpoint.name!r} requires inputs {missing}"
            )
        for result in endpoint.handler(field_values):
            record = dict(field_values)
            record.update(result)
            yield Record(
                {
                    var: record[field]
                    for var, field in output_bindings.items()
                    if field in record
                }
                | {
                    var: params[var]
                    for var in fragment.input_vars
                    if var in params
                }
            )

"""System administration: monitoring, replication, the management console.

Section 2.1's compound architecture includes "offline data manipulation
and replication as well, using our data administrator sub-system", and
section 4 requires "configuration and management tools that make it
possible for administrators to set up, monitor, and understand, the
system".  This example plays a day in the life of the administrator:

1. watch source health while one source flaps;
2. set up an offline replication job (with a cleaning transform) so the
   flaky source's data stays queryable;
3. register the replica as a source of its own and query it — first in
   XML-QL, then in the FLWOR dialect;
4. print the management console's system report.

Run:  python examples/administration.py
"""

from repro import (
    AvailabilityModel,
    Catalog,
    FlakySource,
    NetworkModel,
    NimbleEngine,
    RelationalSource,
    SimClock,
    SourceRegistry,
    XMLSource,
)
from repro.admin import DataAdministrator, HealthMonitor, ManagementConsole
from repro.algebra import TreePattern
from repro.sources.base import Access, Fragment


def main() -> None:
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)

    # a stable CRM and a flaky partner feed
    from repro.sql import Database

    crm = Database("crm")
    crm.execute_script(
        """
        CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, city TEXT);
        INSERT INTO customers VALUES (1,'Ann','Seattle'),(2,'Bob','Portland');
        """
    )
    registry.register(RelationalSource(
        "crm", crm, network=NetworkModel(latency_ms=30, per_row_ms=0.3)))
    catalog.map_relation("customers", "crm", "customers")

    partner = FlakySource(
        XMLSource("partner", {"leads": (
            "<leads>"
            "<lead><email>ann@x.com</email><score>81</score></lead>"
            "<lead><email>bob@y.com</email><score>45</score></lead>"
            "<lead><email>cam@z.com</email><score>92</score></lead>"
            "</leads>"
        )}, network=NetworkModel(latency_ms=80, per_row_ms=0.5)),
        AvailabilityModel(availability=0.6, mean_outage_ms=4_000, seed=5),
    )
    registry.register(partner)

    # --- 1. watch health ----------------------------------------------------
    monitor = HealthMonitor(registry, clock)
    monitor.watch(duration_ms=60_000, interval_ms=1_000)
    print("== source health after 60 s of probes ==")
    for name, health in monitor.health.items():
        print(f"  {name}: uptime {health.uptime_fraction:.0%}")
    for record in monitor.unhealthy(threshold=0.9):
        print(f"  ⚠ {record.name} is below the 90% uptime SLO")

    # --- 2. replicate the flaky feed offline ----------------------------------
    admin = DataAdministrator(clock)
    lead_pattern = TreePattern("lead", children=(
        TreePattern("email", text_var="email"),
        TreePattern("score", text_var="score"),
    ))

    def qualify(record):
        """Offline data manipulation: keep only qualified leads."""
        return record if float(record["score"]) >= 50 else None

    admin.add_job(
        "lead_sync", partner,
        Fragment("partner", (Access("leads", lead_pattern),)),
        target_table="leads", period_ms=10_000, transform=qualify,
    )
    print("\n== replication (10 s cadence, retrying through outages) ==")
    replicated = 0
    for _ in range(12):
        clock.advance(10_000)
        outcome = admin.run_due()
        replicated += sum(outcome.values())
    job = admin.jobs["lead_sync"]
    print(f"  runs: {job.runs}, failures during outages: {job.failures}, "
          f"rows in replica: "
          f"{admin.store.execute('SELECT COUNT(*) FROM leads').scalar()}")

    # --- 3. the replica is just another source ----------------------------------
    registry.register(RelationalSource("replica", admin.store, clock))
    catalog.map_relation("qualified_leads", "replica", "leads")
    engine = NimbleEngine(catalog)

    print("\n== querying the replica (XML-QL) ==")
    result = engine.query(
        'WHERE <l><email>$e</email><score>$s</score></l> '
        'IN "qualified_leads" CONSTRUCT <lead><e>$e</e></lead> ORDER BY $s DESC'
    )
    for element in result.elements:
        print("  " + element.text_content())

    print("\n== the same, in the FLWOR dialect ==")
    result = engine.flwor_query(
        'FOR $l IN "qualified_leads" WHERE $l/score > 80 '
        "ORDER BY $l/score DESCENDING "
        'RETURN <hot email="{$l/email}">{$l/score}</hot>'
    )
    for element in result.elements:
        print(f"  {element.attributes['email']} -> {element.text_content()}")

    # --- 4. the management console --------------------------------------------------
    print("\n== management console ==")
    console = ManagementConsole(engine, monitor=monitor, administrator=admin)
    print(console.render())


if __name__ == "__main__":
    main()

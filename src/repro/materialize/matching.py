"""Fragment canonicalization and the containment test.

A materialized view MV answers a fragment F when

* MV and F read the same accesses of the same source (same relations,
  same variable->field bindings, same pattern literals), and
* every condition of MV is implied by the conditions of F — i.e. MV is
  *at most as restrictive*, so its stored rows are a superset of F's.

The implication check is sound but incomplete: syntactic containment of
canonicalized condition strings, extended with one-sided range
implication (``x > 10`` implies ``x > 5``), equality-to-range
implication (``x = 7`` implies ``x > 5``), and boolean decomposition
(a conjunct implies the whole, either disjunct is implied by the whole).
Conditions of F that MV did not apply become residual local filters.

The same test powers the on-demand fragment result cache
(:mod:`repro.cache`): a cached broad fragment answers a narrower request
whose extra pushed conditions are re-applied as residual local filters.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.pattern import TreePattern
from repro.query import ast as qast
from repro.sources.base import Fragment


def condition_text(expr: qast.Expr) -> str:
    """Canonical string form of a condition (stable across parses)."""
    if isinstance(expr, qast.Var):
        return f"${expr.name}"
    if isinstance(expr, qast.Literal):
        return repr(expr.value)
    if isinstance(expr, qast.BinOp):
        left, right = condition_text(expr.left), condition_text(expr.right)
        if expr.op in ("=", "!=", "AND", "OR", "+", "*") and right < left:
            left, right = right, left  # commutative: normalize order
        return f"({left} {expr.op} {right})"
    if isinstance(expr, qast.Not):
        return f"(NOT {condition_text(expr.operand)})"
    if isinstance(expr, qast.Call):
        return f"{expr.name}({', '.join(condition_text(a) for a in expr.args)})"
    return repr(expr)


def _pattern_text(pattern: TreePattern) -> str:
    return pattern.describe()


def fragment_key(fragment: Fragment) -> str:
    """Canonical identity of a fragment, conditions included."""
    accesses = ";".join(
        f"{access.relation}:{_pattern_text(access.pattern)}"
        for access in fragment.accesses
    )
    conditions = "&".join(sorted(condition_text(c) for c in fragment.conditions))
    inputs = ",".join(fragment.input_vars)
    key = f"{fragment.source}|{accesses}|{conditions}|{inputs}"
    if fragment.columns:
        # projection pushdown narrows identity; unprojected fragments
        # keep their legacy keys
        key += f"|cols={','.join(sorted(fragment.columns))}"
    return key


def access_key(fragment: Fragment) -> str:
    """Identity of the accesses alone (conditions excluded)."""
    accesses = ";".join(
        f"{access.relation}:{_pattern_text(access.pattern)}"
        for access in fragment.accesses
    )
    return f"{fragment.source}|{accesses}"


def _bound_literal(value) -> float | str | None:
    """A literal usable as a one-dimensional bound: number or string.

    Numbers and strings each form a totally ordered family under the
    model order (strings compare lexicographically, exactly like
    ``compare_values``), so range implication is sound within a family.
    Cross-family comparisons are never attempted — the model ranks whole
    types against each other, which the callers conservatively skip.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return value
    return None


def _same_family(a: float | str, b: float | str) -> bool:
    return isinstance(a, str) == isinstance(b, str)


def _range_bound(expr: qast.Expr) -> tuple[str, str, float | str] | None:
    """Decompose ``$v OP literal`` to (var, op, bound) when possible."""
    if not isinstance(expr, qast.BinOp) or expr.op not in ("<", "<=", ">", ">="):
        return None
    left, right, op = expr.left, expr.right, expr.op
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if isinstance(right, qast.Var) and isinstance(left, qast.Literal):
        left, right, op = right, left, flipped[op]
    if isinstance(left, qast.Var) and isinstance(right, qast.Literal):
        bound = _bound_literal(right.value)
        if bound is not None:
            return left.name, op, bound
    return None


def _eq_bound(expr: qast.Expr) -> tuple[str, float | str] | None:
    """Decompose ``$v = literal`` to (var, value) when possible."""
    if not isinstance(expr, qast.BinOp) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if isinstance(right, qast.Var) and isinstance(left, qast.Literal):
        left, right = right, left
    if isinstance(left, qast.Var) and isinstance(right, qast.Literal):
        value = _bound_literal(right.value)
        if value is not None:
            return left.name, value
    return None


def _satisfies(value: float | str, op: str, bound: float | str) -> bool:
    if not _same_family(value, bound):
        return False
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    return value >= bound


def implies(stronger: qast.Expr, weaker: qast.Expr) -> bool:
    """Sound check: does ``stronger`` imply ``weaker``?"""
    if condition_text(stronger) == condition_text(weaker):
        return True
    # boolean decomposition (each rule is sound on its own):
    # (a AND b) implies w when either conjunct does
    if isinstance(stronger, qast.BinOp) and stronger.op == "AND":
        if implies(stronger.left, weaker) or implies(stronger.right, weaker):
            return True
    # (a OR b) implies w only when both disjuncts do
    if isinstance(stronger, qast.BinOp) and stronger.op == "OR":
        if implies(stronger.left, weaker) and implies(stronger.right, weaker):
            return True
    # s implies (a AND b) when it implies both conjuncts
    if isinstance(weaker, qast.BinOp) and weaker.op == "AND":
        if implies(stronger, weaker.left) and implies(stronger, weaker.right):
            return True
    # s implies (a OR b) when it implies either disjunct
    if isinstance(weaker, qast.BinOp) and weaker.op == "OR":
        if implies(stronger, weaker.left) or implies(stronger, weaker.right):
            return True
    weak = _range_bound(weaker)
    if weak is None:
        return False
    var_w, op_w, bound_w = weak
    # equality implies a range it sits inside: x = 7 implies x > 5
    eq = _eq_bound(stronger)
    if eq is not None:
        var_e, value = eq
        return var_e == var_w and _satisfies(value, op_w, bound_w)
    strong = _range_bound(stronger)
    if strong is None:
        return False
    var_s, op_s, bound_s = strong
    if var_s != var_w or not _same_family(bound_s, bound_w):
        return False
    if op_s in (">", ">=") and op_w in (">", ">="):
        if bound_s > bound_w:
            return True
        return bound_s == bound_w and not (op_s == ">=" and op_w == ">")
    if op_s in ("<", "<=") and op_w in ("<", "<="):
        if bound_s < bound_w:
            return True
        return bound_s == bound_w and not (op_s == "<=" and op_w == "<")
    return False


def conditions_subsumed(
    view_conditions: Iterable[qast.Expr], query_conditions: Iterable[qast.Expr]
) -> tuple[bool, list[qast.Expr]]:
    """Is every view condition implied by the query's?  Returns residual.

    Residual = the query conditions not textually identical to a view
    condition (they must be re-applied locally; re-applying an implied
    condition is harmless).
    """
    query_list = list(query_conditions)
    for view_condition in view_conditions:
        if not any(implies(qc, view_condition) for qc in query_list):
            return False, []
    view_texts = {condition_text(vc) for vc in view_conditions}
    residual = [qc for qc in query_list if condition_text(qc) not in view_texts]
    return True, residual


def matches(view_fragment: Fragment, query_fragment: Fragment) -> tuple[bool, list[qast.Expr]]:
    """Full containment test; returns (answers?, residual conditions).

    Column-aware: a view projected to a column subset only answers a
    query whose (effective) columns it covers, and only when every
    residual condition can still be evaluated over the view's stored
    columns.  A broader (unprojected) view answers any narrower query —
    the caller projects the served records down (see
    :func:`project_records`).
    """
    if view_fragment.input_vars or query_fragment.input_vars:
        return False, []  # parameterized fragments are not materialized
    if access_key(view_fragment) != access_key(query_fragment):
        return False, []
    if view_fragment.columns:
        view_columns = set(view_fragment.columns)
        query_columns = set(
            query_fragment.columns or query_fragment.variables()
        )
        if not query_columns <= view_columns:
            return False, []
    answers, residual = conditions_subsumed(
        view_fragment.conditions, query_fragment.conditions
    )
    if answers and view_fragment.columns and residual:
        residual_vars: set[str] = set()
        for condition in residual:
            residual_vars |= qast.expr_variables(condition)
        if not residual_vars <= set(view_fragment.columns):
            return False, []
    return answers, residual


def project_records(records: list, query_fragment: Fragment) -> list:
    """Narrow served records to the query fragment's column subset.

    Containment can serve a projected query from a broader entry; the
    result must look exactly as if the source had projected.  Records
    already at (or below) the requested width pass through untouched.
    """
    columns = query_fragment.columns
    if not columns or not records:
        return records
    wanted = set(columns)
    if all(name in wanted for name in records[0].fields):
        return records
    order = [
        var for var in query_fragment.variables() if var in wanted
    ] or list(columns)
    return [record.project(order) for record in records]

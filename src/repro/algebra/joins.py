"""Join operators: hash (natural), nested-loop (theta) and dependent."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.algebra.operators import Operator, Predicate
from repro.algebra.tuples import BindingTuple
from repro.xmldm.values import _comparison_key  # stable hashable key for any value


def _key_for(row: BindingTuple, variables: tuple[str, ...]) -> tuple | None:
    parts = []
    for var in variables:
        if var not in row:
            return None
        parts.append(_comparison_key(row[var]))
    return tuple(parts)


class HashJoin(Operator):
    """Natural join on explicitly named shared variables.

    Builds a hash table over the right child keyed by the join variables'
    values, then probes with the left.  Tuples lacking a join variable
    never match (NULL-like semantics).
    """

    def __init__(self, left: Operator, right: Operator, join_vars: tuple[str, ...] | list[str]):
        super().__init__(left, right)
        self.join_vars = tuple(join_vars)

    def _produce(self) -> Iterator[BindingTuple]:
        left, right = self.children
        buckets: dict[tuple, list[BindingTuple]] = {}
        for row in right:
            key = _key_for(row, self.join_vars)
            if key is not None:
                buckets.setdefault(key, []).append(row)
        for row in left:
            key = _key_for(row, self.join_vars)
            if key is None:
                continue
            for partner in buckets.get(key, ()):
                merged = row.merge(partner)
                if merged is not None:
                    yield merged

    def describe(self) -> str:
        return f"HashJoin({', '.join('$' + v for v in self.join_vars)})"


class NestedLoopJoin(Operator):
    """Theta join: cross product filtered by an optional predicate.

    Tuples that share variables must agree on them (merge unification);
    an extra predicate can express non-equi conditions.
    """

    def __init__(self, left: Operator, right: Operator, predicate: Predicate | None = None):
        super().__init__(left, right)
        self.predicate = predicate

    def _produce(self) -> Iterator[BindingTuple]:
        left, right = self.children
        right_rows = list(right)
        for row in left:
            for partner in right_rows:
                merged = row.merge(partner)
                if merged is None:
                    continue
                if self.predicate is None or self.predicate(merged):
                    yield merged

    def describe(self) -> str:
        return "NestedLoopJoin" + ("(θ)" if self.predicate else "")


class DependentJoin(Operator):
    """For each left tuple, run a right plan built from its bindings.

    This is the operator behind binding-pattern sources (web services
    that require input parameters): the optimizer places the dependent
    side so its required variables are bound by the time it runs.
    """

    def __init__(
        self,
        left: Operator,
        right_factory: Callable[[BindingTuple], Operator],
        label: str = "",
    ):
        super().__init__(left)
        self.right_factory = right_factory
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for row in self.children[0]:
            for partner in self.right_factory(row):
                merged = row.merge(partner)
                if merged is not None:
                    yield merged

    def describe(self) -> str:
        return f"DependentJoin({self.label or 'parameterized'})"

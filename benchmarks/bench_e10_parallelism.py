"""E10 — parallel fetches, dependent-join batching, plan caching.

The paper's engine "included facilities for parallel execution of query
operators" (section 3.1); a query over a mediated view fans out to many
autonomous sources, so a serial engine pays the *sum* of their
latencies where a fetch pool pays the *max* per wave.  This experiment
measures the three parallel-execution features on the extended web-site
workload (four independent sources plus the parameterized reviews
endpoint):

* **fan-out sweep** — ``max_parallel_fetches`` in {1, 2, 4, 8} over the
  four-source page query: virtual latency drops to the slowest wave
  while results and every stats counter stay identical;
* **batch sweep** — ``batch_size`` in {1, 8, 32} over the dependent
  reviews join: one remote call per batch instead of per row (the N+1
  fix), collapsing ``remote_calls`` by ~batch_size;
* **plan cache** — repeated query text skips parse/bind/decompose,
  cutting real wall microseconds per query.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro import NimbleEngine
from repro.workloads import make_website_workload

N_PRODUCTS = 50

#: four independent sources: content catalog, ERP, logistics, marketing
FANOUT_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

#: dependent join against the parameterized reviews endpoint (N+1 shape)
BATCH_QUERY = (
    'WHERE <page sku=$s><name>$n</name></page> IN "product_page", '
    '<r><sku>$s</sku><rating>$rt</rating></r> IN "review_summary" '
    "CONSTRUCT <row sku=$s><rating>$rt</rating></row> ORDER BY $s"
)


def _signature(result) -> list[str]:
    from repro.xmldm.serializer import serialize

    return [serialize(element) for element in result.elements]


BENCH_STATS = BenchStats()


def run_experiment():
    BENCH_STATS.reset()
    fanout_rows, batch_rows, cache_rows = [], [], []

    # -- fan-out sweep ----------------------------------------------------
    serial_ms = None
    fanout_signatures = set()
    for fan_out in (1, 2, 4, 8):
        workload = make_website_workload(N_PRODUCTS, seed=23, extended=True)
        engine = NimbleEngine(workload.catalog, max_parallel_fetches=fan_out)
        result = BENCH_STATS.absorb(engine.query(FANOUT_QUERY))
        if serial_ms is None:
            serial_ms = result.stats.elapsed_virtual_ms
        fanout_signatures.add(tuple(_signature(result)))
        fanout_rows.append([
            fan_out,
            result.stats.elapsed_virtual_ms,
            round(serial_ms / result.stats.elapsed_virtual_ms, 2),
            result.stats.parallel_waves,
            result.stats.remote_calls,
            len(result.elements),
        ])

    # -- batch sweep ------------------------------------------------------
    baseline_calls = None
    batch_signatures = set()
    for batch_size in (1, 8, 32):
        workload = make_website_workload(N_PRODUCTS, seed=23, extended=True)
        engine = NimbleEngine(workload.catalog, max_parallel_fetches=1,
                              batch_size=batch_size)
        result = BENCH_STATS.absorb(engine.query(BATCH_QUERY))
        if baseline_calls is None:
            baseline_calls = result.stats.remote_calls
        batch_signatures.add(tuple(_signature(result)))
        batch_rows.append([
            batch_size,
            result.stats.remote_calls,
            round(baseline_calls / result.stats.remote_calls, 1),
            result.stats.batch_calls,
            result.stats.elapsed_virtual_ms,
            len(result.elements),
        ])

    # -- plan cache -------------------------------------------------------
    workload = make_website_workload(N_PRODUCTS, seed=23, extended=True)
    engine = NimbleEngine(workload.catalog)
    repeats = 30
    cold_started = time.perf_counter()
    first = BENCH_STATS.absorb(engine.query(FANOUT_QUERY))
    cold_us = (time.perf_counter() - cold_started) * 1e6
    cold_hits, cold_misses = engine.plan_cache_hits, engine.plan_cache_misses
    warm_started = time.perf_counter()
    for _ in range(repeats):
        BENCH_STATS.absorb(engine.query(FANOUT_QUERY))
    warm_us = (time.perf_counter() - warm_started) * 1e6 / repeats
    cache_rows.append(["cold (compile)", round(cold_us), cold_hits,
                       cold_misses])
    cache_rows.append([
        f"warm x{repeats} (cached plan)", round(warm_us),
        engine.plan_cache_hits, engine.plan_cache_misses,
    ])
    assert len(first.elements) == N_PRODUCTS

    consistency = {
        "fanout_result_sets": len(fanout_signatures),
        "batch_result_sets": len(batch_signatures),
    }
    return fanout_rows, batch_rows, cache_rows, consistency


def report():
    fanout_rows, batch_rows, cache_rows, consistency = run_experiment()
    print_table(
        "E10a: fetch-pool fan-out over four independent sources",
        ["fan-out", "virtual ms", "speedup", "waves", "remote calls",
         "results"],
        fanout_rows,
    )
    print_table(
        "E10b: dependent-join batching against the reviews endpoint",
        ["batch size", "remote calls", "call reduction", "batch calls",
         "virtual ms", "results"],
        batch_rows,
    )
    print_table(
        "E10c: compiled-plan cache (same query text, wall clock)",
        ["run", "wall us/query", "cache hits", "cache misses"],
        cache_rows,
    )
    by_fan = {row[0]: row for row in fanout_rows}
    by_batch = {row[0]: row for row in batch_rows}
    write_bench_json(
        "e10_parallelism",
        ["fan-out", "virtual ms", "speedup", "waves", "remote calls",
         "results"],
        fanout_rows,
        headline={
            "fanout4_speedup": by_fan[4][2],
            "batch32_call_reduction": by_batch[32][2],
            "plan_cache_warm_us": cache_rows[1][1],
            **consistency,
        },
        extra_tables={
            "batching": (["batch size", "remote calls", "call reduction",
                          "batch calls", "virtual ms", "results"],
                         batch_rows),
            "plan_cache": (["run", "wall us/query", "cache hits",
                            "cache misses"], cache_rows),
        },
        stats=BENCH_STATS,
    )
    return fanout_rows, batch_rows, cache_rows, consistency


def test_e10_parallelism(benchmark):
    fanout_rows, batch_rows, cache_rows, consistency = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    by_fan = {row[0]: row for row in fanout_rows}
    by_batch = {row[0]: row for row in batch_rows}
    # identical result elements in every configuration
    assert consistency["fanout_result_sets"] == 1
    assert consistency["batch_result_sets"] == 1
    # fan-out 4 at least halves the multi-source query's virtual latency
    assert by_fan[4][1] * 2 <= by_fan[1][1]
    # batching collapses the N+1 call pattern by >= 10x
    assert by_batch[1][1] >= by_batch[32][1] * 10
    # the cached plan serves repeats without recompiling
    assert cache_rows[1][2] > 0 and cache_rows[1][3] == 1
    report()


if __name__ == "__main__":
    report()

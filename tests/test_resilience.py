"""Tests for the resilience layer: faults, retries, breakers, fallbacks."""

import pytest

from repro.core import NimbleEngine, PartialResultPolicy
from repro.core.partial import Completeness
from repro.admin.replication import DataAdministrator
from repro.errors import (
    CircuitOpenError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from repro.materialize import MaterializationManager, RefreshPolicy
from repro.mediator.catalog import Catalog
from repro.optimizer.decomposer import decompose
from repro.query.binder import bind_query
from repro.query.parser import parse_query
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    FallbackRegistry,
    FaultModel,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock
from repro.sources import (
    AvailabilityModel,
    FlakySource,
    NetworkModel,
    SourceRegistry,
    XMLSource,
)

ITEMS_XML = (
    "<r><item><v>a</v></item><item><v>b</v></item><item><v>c</v></item></r>"
)
# dotted source.document addressing: the XML idiom that preserves the
# pattern root (mapped relation names rewrite it for relational sources)
ITEMS_QUERY = (
    'WHERE <item><v>$v</v></item> IN "feed.data" CONSTRUCT <out>$v</out>'
)


def build_feed(faults=None, availability=1.0, latency_ms=10.0):
    """One-source deployment: clock, registry, catalog, flaky source."""
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    source = FlakySource(
        XMLSource("feed", {"data": ITEMS_XML},
                  network=NetworkModel(latency_ms=latency_ms, per_row_ms=0.1)),
        AvailabilityModel(availability=availability, seed=3),
        faults=faults,
    )
    registry.register(source)
    return clock, catalog, source


def items_fragment(catalog):
    bound = bind_query(parse_query(ITEMS_QUERY))
    return decompose(bound, catalog).units[0].fragment


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultModel(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(slow_factor=0.5)

    def test_failure_injection_raises_transient(self):
        clock = SimClock()
        model = FaultModel(failure_rate=1.0, seed=1)
        with pytest.raises(TransientSourceError):
            model.inject_call("s", clock, 10.0)
        assert model.injected_failures == 1

    def test_slow_call_inflates_clock(self):
        clock = SimClock()
        model = FaultModel(slow_rate=1.0, slow_factor=5.0, seed=1)
        model.inject_call("s", clock, 10.0)
        assert clock.now == pytest.approx(40.0)  # 4x extra latency
        assert model.injected_slow_calls == 1

    def test_flat_slow_penalty(self):
        clock = SimClock()
        model = FaultModel(slow_rate=1.0, slow_penalty_ms=99.0, seed=1)
        model.inject_call("s", clock, 0.0)
        assert clock.now == pytest.approx(99.0)

    def test_deterministic_replay(self):
        a = FaultModel(failure_rate=0.3, slow_rate=0.2, drop_rate=0.2, seed=42)
        b = FaultModel(failure_rate=0.3, slow_rate=0.2, drop_rate=0.2, seed=42)

        def trace(model):
            events = []
            for _ in range(50):
                clock = SimClock()
                try:
                    model.inject_call("s", clock, 10.0)
                    events.append(("ok", clock.now, model.drop_point(5)))
                except TransientSourceError:
                    events.append(("fail", clock.now, None))
            return events

        expected = trace(a)
        assert trace(b) == expected
        a.reset()
        assert a.injected_failures == 0
        assert trace(a) == expected

    def test_midstream_drop_charges_partial_rows(self):
        clock, catalog, source = build_feed(
            faults=FaultModel(drop_rate=1.0, seed=5)
        )
        with pytest.raises(TransientSourceError) as excinfo:
            source.fetch_all("data")
        assert "stream dropped" in str(excinfo.value)
        # the call latency was paid and some rows may have transferred
        assert source.network.calls == 1
        assert source.network.rows_transferred < 3


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_ms=100.0, multiplier=2.0,
                             max_backoff_ms=300.0, jitter=0.0)
        assert policy.backoff_ms(0) == pytest.approx(100.0)
        assert policy.backoff_ms(1) == pytest.approx(200.0)
        assert policy.backoff_ms(2) == pytest.approx(300.0)  # capped
        assert policy.backoff_ms(9) == pytest.approx(300.0)

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(jitter=0.5, seed=9)
        b = RetryPolicy(jitter=0.5, seed=9)
        seq_a = [a.backoff_ms(i) for i in range(10)]
        seq_b = [b.backoff_ms(i) for i in range(10)]
        assert seq_a == seq_b
        a.reset()
        assert [a.backoff_ms(i) for i in range(10)] == seq_a

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_mode="gaussian")

    def test_legacy_equal_schedule_is_pinned(self):
        # the shared-RNG draw sequence existing deployments replay on;
        # "equal" must stay the default and keep producing exactly this
        policy = RetryPolicy(base_backoff_ms=100.0, multiplier=2.0,
                             max_backoff_ms=400.0, jitter=0.5, seed=9)
        assert policy.jitter_mode == "equal"
        import random

        rng = random.Random(9)
        expected = [
            min(100.0 * 2.0 ** i, 400.0) * (1.0 + rng.uniform(-0.5, 0.5))
            for i in range(6)
        ]
        assert [policy.backoff_ms(i) for i in range(6)] == expected

    def test_decorrelated_jitter_is_order_independent(self):
        policy = RetryPolicy(jitter=0.5, seed=9, jitter_mode="decorrelated")
        forward = [policy.backoff_ms(i, source="a") for i in range(5)]
        backward = [policy.backoff_ms(i, source="a")
                    for i in reversed(range(5))]
        assert forward == list(reversed(backward))
        # a second policy instance agrees draw for draw: no shared state
        twin = RetryPolicy(jitter=0.5, seed=9, jitter_mode="decorrelated")
        assert [twin.backoff_ms(i, source="a") for i in range(5)] == forward

    def test_decorrelated_jitter_separates_sources(self):
        policy = RetryPolicy(jitter=0.5, seed=9, jitter_mode="decorrelated")
        a = [policy.backoff_ms(i, source="a") for i in range(5)]
        b = [policy.backoff_ms(i, source="b") for i in range(5)]
        assert a != b  # the whole point: per-source decorrelation
        # interleaving callers changes nothing for either source
        mixed_a, mixed_b = [], []
        for i in range(5):
            mixed_a.append(policy.backoff_ms(i, source="a"))
            mixed_b.append(policy.backoff_ms(i, source="b"))
        assert mixed_a == a
        assert mixed_b == b

    def test_decorrelated_engine_run_is_deterministic(self):
        def run():
            clock, catalog, source = build_feed(
                faults=FaultModel(failure_rate=0.5, seed=11)
            )
            engine = NimbleEngine(
                catalog,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=3, jitter=0.4, seed=5,
                                      jitter_mode="decorrelated"),
                ),
            )
            totals = {}
            for _ in range(20):
                stats = engine.query(ITEMS_QUERY).stats
                for key, value in stats.counters().items():
                    totals[key] = totals.get(key, 0) + value
            totals["clock"] = clock.now
            return totals

        assert run() == run()


class TestCircuitBreaker:
    def config(self, **overrides):
        base = dict(window=4, failure_threshold=0.5, min_calls=2,
                    cooldown_ms=1_000.0, half_open_probes=1)
        base.update(overrides)
        return BreakerConfig(**base)

    def test_opens_under_sustained_failure(self):
        breaker = CircuitBreaker(self.config(), "s")
        assert not breaker.record_failure(0.0)  # below min_calls
        assert breaker.record_failure(1.0)      # 2/2 failures -> trips
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(2.0)
        with pytest.raises(CircuitOpenError):
            breaker.check(2.0)

    def test_half_open_after_cooldown_then_closes(self):
        breaker = CircuitBreaker(self.config(), "s")
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(1_200.0)  # cooldown elapsed -> probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(1_210.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(self.config(), "s")
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.allow(1_500.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_failure(1_510.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow(1_600.0)  # cooldown restarted

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker(self.config(), "s")
        for t in range(10):
            breaker.record_success(float(t))
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.CLOSED  # 1/4 < threshold


class TestResilientEngine:
    def test_retries_recover_transient_faults(self):
        # 60% per-call failure: without retries most queries skip, with
        # 4 attempts nearly all succeed.
        faults = FaultModel(failure_rate=0.6, seed=17)
        clock, catalog, source = build_feed(faults=faults)
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=4, base_backoff_ms=5.0),
                breaker=None,
            ),
        )
        complete = 0
        for _ in range(20):
            result = engine.query(ITEMS_QUERY)
            if result.completeness.complete:
                complete += 1
        assert complete >= 18
        assert engine.resilient.total_retries > 0

    def test_retry_is_charged_to_the_clock(self):
        faults = FaultModel(failure_rate=1.0, seed=1)
        clock, catalog, source = build_feed(faults=faults)
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, base_backoff_ms=100.0,
                                  jitter=0.0),
                breaker=None,
            ),
        )
        result = engine.query(ITEMS_QUERY)
        assert not result.completeness.complete
        assert result.stats.retries == 2
        # 3 call latencies + backoffs of 100 and 200 ms
        assert result.stats.elapsed_virtual_ms >= 330.0
        # satellite: remote_calls derives from the network model, so
        # every retried attempt is counted exactly once
        assert result.stats.remote_calls == 3

    def test_breaker_opens_and_fails_fast(self):
        clock, catalog, source = build_feed()
        source.force_offline()
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
                breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                      min_calls=2, cooldown_ms=60_000.0),
            ),
        )
        first = engine.query(ITEMS_QUERY)
        assert first.stats.breaker_trips == 1
        assert not first.completeness.complete
        # breaker now open: the next query must not touch the wire
        calls_before = source.network.calls
        second = engine.query(ITEMS_QUERY)
        assert source.network.calls == calls_before
        assert second.stats.remote_calls == 0
        assert second.stats.fragments_skipped == 1

    def test_breaker_half_opens_and_recovers(self):
        clock, catalog, source = build_feed()
        source.force_offline()
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=None,
                breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                      min_calls=2, cooldown_ms=1_000.0),
            ),
        )
        engine.query(ITEMS_QUERY)
        engine.query(ITEMS_QUERY)
        breaker = engine.resilient.breakers["feed"]
        assert breaker.state is BreakerState.OPEN
        # source comes back; after the cooldown a probe call closes it
        source.force_offline(False)
        clock.advance(2_000.0)
        result = engine.query(ITEMS_QUERY)
        assert result.completeness.complete
        assert breaker.state is BreakerState.CLOSED

    def test_call_deadline_converts_slow_calls_to_timeouts(self):
        # every call is slow (500 ms against a 100 ms budget)
        faults = FaultModel(slow_rate=1.0, slow_penalty_ms=500.0, seed=2)
        clock, catalog, source = build_feed(faults=faults, latency_ms=10.0)
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
                breaker=None,
                call_deadline_ms=100.0,
            ),
        )
        result = engine.query(ITEMS_QUERY)
        assert not result.completeness.complete
        assert result.stats.deadline_misses == 2

    def test_query_deadline_stops_retrying(self):
        faults = FaultModel(failure_rate=1.0, seed=3)
        clock, catalog, source = build_feed(faults=faults, latency_ms=50.0)
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=10, base_backoff_ms=200.0,
                                  jitter=0.0),
                breaker=None,
                query_deadline_ms=300.0,
            ),
        )
        result = engine.query(ITEMS_QUERY)
        assert not result.completeness.complete
        assert result.stats.deadline_misses >= 1
        assert result.stats.retries < 9  # budget cut the retry loop short
        with pytest.raises(SourceTimeoutError):
            engine.query(ITEMS_QUERY, policy=PartialResultPolicy.FAIL)

    def test_deterministic_across_runs(self):
        def run():
            faults = FaultModel(failure_rate=0.4, slow_rate=0.2,
                                drop_rate=0.1, seed=77)
            clock, catalog, source = build_feed(faults=faults)
            engine = NimbleEngine(
                catalog,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=3, seed=5),
                    breaker=BreakerConfig(cooldown_ms=500.0),
                ),
            )
            totals = {}
            for index in range(30):
                stats = engine.query(ITEMS_QUERY).stats
                for key, value in stats.counters().items():
                    totals[key] = totals.get(key, 0) + value
            totals["clock"] = clock.now
            return totals

        assert run() == run()


class TestDegradedReads:
    def test_stale_materialized_fragment_serves_offline_source(self):
        clock, catalog, source = build_feed()
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        engine.materialize_query_fragments(ITEMS_QUERY,
                                           RefreshPolicy.ttl(100.0))
        clock.advance(10_000.0)  # cache is now stale
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert [e.text_content() for e in result.elements] == ["a", "b", "c"]
        assert result.stats.stale_served == 1
        assert result.stats.fragments_skipped == 0
        assert result.completeness.complete  # present, just stale
        assert result.completeness.stale_sources == ["feed"]
        assert result.completeness.degraded
        assert "stale: feed" in result.completeness.describe()
        assert manager.stale_hits == 1

    def test_fresh_cache_still_preferred_over_stale(self):
        clock, catalog, source = build_feed()
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        engine.materialize_query_fragments(ITEMS_QUERY,
                                           RefreshPolicy.ttl(1e9))
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert result.stats.fragments_from_cache == 1
        assert result.stats.stale_served == 0
        assert not result.completeness.stale_sources

    def test_fail_policy_never_serves_stale(self):
        clock, catalog, source = build_feed()
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager,
                              default_policy=PartialResultPolicy.FAIL)
        engine.materialize_query_fragments(ITEMS_QUERY,
                                           RefreshPolicy.ttl(100.0))
        clock.advance(10_000.0)
        source.force_offline()
        with pytest.raises(SourceUnavailableError):
            engine.query(ITEMS_QUERY)

    def test_replica_fallback_after_replication_job(self):
        clock, catalog, source = build_feed()
        fragment = items_fragment(catalog)
        admin = DataAdministrator(clock)
        admin.add_job("copy_items", source, fragment, "replica_items",
                      period_ms=60_000.0)
        assert admin.run_job("copy_items") == 3
        fallbacks = FallbackRegistry()
        assert admin.register_fallbacks(fallbacks) == 1
        engine = NimbleEngine(catalog, fallbacks=fallbacks)
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert sorted(e.text_content() for e in result.elements) == [
            "a", "b", "c",
        ]
        assert result.stats.stale_served == 1
        assert result.completeness.stale_sources == ["feed"]
        assert fallbacks.hits == 1

    def test_replica_records_none_before_first_run(self):
        clock, catalog, source = build_feed()
        admin = DataAdministrator(clock)
        admin.add_job("copy_items", source, items_fragment(catalog),
                      "replica_items", period_ms=60_000.0)
        assert admin.replica_records("copy_items") is None
        fallbacks = FallbackRegistry()
        admin.register_fallbacks(fallbacks)
        engine = NimbleEngine(catalog, fallbacks=fallbacks)
        source.force_offline()
        result = engine.query(ITEMS_QUERY)  # no replica yet -> plain skip
        assert result.stats.fragments_skipped == 1
        assert result.completeness.missing_sources == ["feed"]

    def test_allow_stale_false_disables_degraded_reads(self):
        clock, catalog, source = build_feed()
        manager = MaterializationManager(clock)
        engine = NimbleEngine(
            catalog, materializer=manager,
            resilience=ResiliencePolicy(retry=None, breaker=None,
                                        allow_stale=False),
        )
        engine.materialize_query_fragments(ITEMS_QUERY,
                                           RefreshPolicy.ttl(100.0))
        clock.advance(10_000.0)
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert result.stats.stale_served == 0
        assert result.stats.fragments_skipped == 1


class TestFallbackCacheInterplay:
    """The fragment cache as a degraded-read rung under breaker pressure."""

    def build_cached(self, **resilience_overrides):
        clock, catalog, source = build_feed()
        settings = dict(
            retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0,
                              jitter=0.0),
            breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                  min_calls=2, cooldown_ms=1e9),
        )
        settings.update(resilience_overrides)
        engine = NimbleEngine(
            catalog,
            fragment_cache_bytes=100_000,
            fragment_cache_ttl_ms=100.0,
            resilience=ResiliencePolicy(**settings),
        )
        return clock, engine, source

    def test_expired_cache_entry_serves_terminal_failure(self):
        clock, engine, source = self.build_cached()
        warm = engine.query(ITEMS_QUERY)  # populates the fragment cache
        assert warm.stats.fragments_executed == 1
        clock.advance(10_000.0)  # the entry is now past its TTL
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert [e.text_content() for e in result.elements] == ["a", "b", "c"]
        assert result.stats.stale_cache_served == 1
        assert result.stats.stale_served == 1
        assert result.stats.fragments_skipped == 0
        assert result.completeness.complete  # rows present, just old
        assert result.completeness.stale_sources == ["feed"]
        assert result.completeness.degraded

    def test_open_breaker_serves_stale_without_burning_retries(self):
        clock, engine, source = self.build_cached()
        engine.query(ITEMS_QUERY)
        clock.advance(10_000.0)
        source.force_offline()
        opener = engine.query(ITEMS_QUERY)  # failures here open the breaker
        assert opener.stats.retries > 0
        assert opener.stats.breaker_trips == 1
        breaker = engine.resilient.breakers["feed"]
        assert breaker.state is BreakerState.OPEN
        fast = engine.query(ITEMS_QUERY)
        # fail-fast path: no source call, no retry budget spent — and the
        # expired cache entry still answers with the stale annotation
        assert fast.stats.retries == 0
        assert fast.stats.remote_calls == 0
        assert fast.stats.stale_cache_served == 1
        assert fast.completeness.stale_sources == ["feed"]
        assert fast.completeness.complete

    def test_fresh_entry_preempts_the_whole_ladder(self):
        clock, engine, source = self.build_cached()
        engine.query(ITEMS_QUERY)
        source.force_offline()  # entry still fresh: failure never seen
        result = engine.query(ITEMS_QUERY)
        assert result.stats.fragment_cache_hits == 1
        assert result.stats.stale_cache_served == 0
        assert result.stats.retries == 0
        assert not result.completeness.stale_sources

    def test_allow_stale_false_blocks_the_cache_rung_too(self):
        clock, engine, source = self.build_cached(allow_stale=False)
        engine.query(ITEMS_QUERY)
        clock.advance(10_000.0)
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert result.stats.stale_cache_served == 0
        assert result.stats.fragments_skipped == 1
        assert result.completeness.missing_sources == ["feed"]

    def test_epoch_bump_invalidates_stale_serving(self):
        clock, engine, source = self.build_cached()
        engine.query(ITEMS_QUERY)
        clock.advance(10_000.0)
        # any catalog change moves the version epoch: old rows are wrong
        engine.catalog.map_relation("items_again", "feed", "data")
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert result.stats.stale_cache_served == 0
        assert result.stats.fragments_skipped == 1


class TestFlworRequiredSources:
    @pytest.fixture
    def flaky_catalog(self, catalog):
        offline = FlakySource(
            XMLSource("archive", {"old": "<r><item><v>1</v></item></r>"}),
            AvailabilityModel(availability=0.99),
        )
        catalog.registry.register(offline)
        offline.force_offline()
        catalog.map_relation("archive_items", "archive", "old")
        return catalog

    def test_flwor_honors_required_sources(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        query = 'FOR $i IN "archive_items" RETURN <r>{$i}</r>'
        with pytest.raises(SourceUnavailableError):
            engine.flwor_query(query, required_sources={"archive"})

    def test_flwor_skips_unrequired_offline_source(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        result = engine.flwor_query(
            'FOR $i IN "archive_items" RETURN <r>{$i}</r>',
            required_sources={"crm"},
        )
        assert result.elements == []
        assert result.completeness.missing_sources == ["archive"]

    def test_flwor_requiring_healthy_source_succeeds(self, flaky_catalog):
        engine = NimbleEngine(flaky_catalog)
        result = engine.flwor_query(
            'FOR $c IN "customers" RETURN <r>{$c/name}</r>',
            required_sources={"crm"},
        )
        assert len(result.elements) == 4
        assert result.completeness.complete


class TestCompletenessMerge:
    def test_merge_overlapping_missing_and_stale(self):
        left = Completeness()
        left.record_skip("a")
        left.record_stale("b")
        right = Completeness()
        right.record_skip("a")
        right.record_skip("c")
        right.record_stale("b")
        right.record_stale("d")
        left.merge(right)
        assert left.missing_sources == ["a", "c"]
        assert left.stale_sources == ["b", "d"]
        assert left.skipped_fragments == 3
        assert not left.complete

    def test_merge_complete_with_stale_only(self):
        left = Completeness()
        right = Completeness()
        right.record_stale("s")
        left.merge(right)
        assert left.complete
        assert left.degraded
        assert left.stale_sources == ["s"]
        assert left.describe() == "complete (stale: s)"

    def test_source_both_stale_and_missing(self):
        # one fragment served stale, another fragment of the same source
        # skipped outright: both annotations stand
        note = Completeness()
        note.record_stale("s")
        note.record_skip("s")
        assert note.stale_sources == ["s"]
        assert note.missing_sources == ["s"]
        assert "INCOMPLETE" in note.describe()
        assert "stale: s" in note.describe()

"""E3 — dynamic data cleaning: blocking and the concordance database.

Paper claims (section 3.2): cleaning must run dynamically at query time
(so throughput matters); "large amounts of human effort may be required
to develop a concordance database which records determinations for
equivalent objects" — and once built, "past human decisions are
reapplied via a concordance database".  The merge/purge problem
(Hernandez & Stolfo, the paper's [10, 11]) motivates sorted-neighborhood
blocking over naive all-pairs comparison.

E3a sweeps dataset size: candidate pairs and wall time for naive vs
single-pass SNM vs multi-pass SNM, plus precision/recall against the
generator's ground truth.

E3b measures the concordance effect: a cold run (everything scored)
versus a warm re-run (decisions replayed).

Expected shape: naive pairs grow quadratically while SNM grows ~
linearly; multi-pass recovers most of the recall single-pass loses;
warm runs re-score (close to) nothing.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BenchStats, print_table, write_bench_json

from repro.cleaning import (
    CleaningFlow,
    ConcordanceDB,
    FieldRule,
    FlowMode,
    LinkStep,
    MatchStep,
    NormalizeStep,
    RecordMatcher,
    jaro_winkler,
)
from repro.cleaning.normalize import NormalizerRegistry
from repro.workloads import make_customer_universe
from repro.xmldm.values import Record

SIZES = (200, 400, 800)

#: cleaning runs no engine queries; the all-zero counter union keeps the
#: BENCH_*.json schema uniform across experiments
BENCH_STATS = BenchStats()


def unified(universe):
    registry = NormalizerRegistry()
    datasets = {}
    for source, records in universe.records.items():
        rows = []
        for record in records:
            if source == "crm":
                name = f"{record['first_name']} {record['last_name']}"
                city = record["city"]
            elif source == "billing":
                name = record["name"]
                city = record["address"].rpartition(",")[2]
            else:
                name = record["fullname"]
                city = record["city"]
            rows.append(Record({
                "id": record["id"],
                "name": registry.apply("name", name),
                "city": registry.apply("city", city),
            }))
        datasets[source] = rows
    return datasets


def matcher():
    return RecordMatcher(
        [
            FieldRule("name", metric=jaro_winkler, weight=2.0),
            FieldRule("city", metric=jaro_winkler, weight=1.0),
        ],
        match_threshold=0.95,
        possible_threshold=0.80,
    )


def flow_for(blocking: str, concordance=None):
    return CleaningFlow(
        "e3",
        [
            NormalizeStep("name", "whitespace"),
            MatchStep(matcher(), blocking=blocking, key_field="name", window=9),
            LinkStep(),
        ],
        concordance=concordance,
    )


def run_blocking_sweep() -> list[list]:
    rows = []
    for size in SIZES:
        universe = make_customer_universe(size, overlap=0.5, dirt=0.1, seed=13)
        datasets = unified(universe)
        truth = universe.true_match_pairs()
        record_total = sum(len(v) for v in datasets.values())
        for blocking in ("naive", "snm", "multipass"):
            if blocking == "naive" and size > 400:
                rows.append([record_total, blocking, "-", "-", "-", "-"])
                continue  # quadratic: documented skip, not silence
            flow = flow_for(blocking)
            started = time.perf_counter()
            result = flow.run(datasets, FlowMode.EXTRACTION)
            elapsed = time.perf_counter() - started
            found = {tuple(sorted(p)) for p in result.matched_pairs}
            tp = len(found & truth)
            rows.append([
                record_total,
                blocking,
                result.pairs_compared,
                round(elapsed * 1000),
                tp / max(len(found), 1),
                tp / len(truth),
            ])
    return rows


def run_concordance() -> list[list]:
    universe = make_customer_universe(800, overlap=0.5, dirt=0.1, seed=13)
    datasets = unified(universe)
    concordance = ConcordanceDB()
    flow = CleaningFlow(
        "e3b",
        [
            NormalizeStep("name", "whitespace"),
            MatchStep(matcher(), blocking="multipass", key_field="name",
                      window=9, record_nonmatches=True),
            LinkStep(),
        ],
        concordance=concordance,
    )
    rows = []
    for label in ("cold", "warm"):
        started = time.perf_counter()
        result = flow.run(datasets, FlowMode.EXTRACTION)
        elapsed = time.perf_counter() - started
        rows.append([
            label,
            result.pairs_compared,
            result.pairs_replayed,
            round(elapsed * 1000),
            len(result.matched_pairs),
        ])
    return rows


def run_experiment():
    return run_blocking_sweep(), run_concordance()


def report():
    blocking_rows, concordance_rows = run_experiment()
    print_table(
        "E3a: blocking strategies (merge/purge, paper's [10,11])",
        ["records", "blocking", "pairs compared", "wall ms",
         "precision", "recall"],
        blocking_rows,
    )
    print_table(
        "E3b: concordance database replay (800-customer universe)",
        ["run", "pairs scored", "pairs replayed", "wall ms", "matches"],
        concordance_rows,
    )
    write_bench_json(
        "e3_cleaning",
        ["records", "blocking", "pairs compared", "wall ms",
         "precision", "recall"],
        blocking_rows,
        headline={
            "max_recall": max(
                (row[5] for row in blocking_rows if row[5] != "-"),
                default=0.0,
            ),
        },
        extra_tables={
            "concordance": (["run", "pairs scored", "pairs replayed",
                             "wall ms", "matches"], concordance_rows),
        },
        stats=BENCH_STATS,
    )
    return blocking_rows, concordance_rows


def test_e3_cleaning(benchmark):
    blocking_rows, concordance_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    by_key = {(r[0], r[1]): r for r in blocking_rows if r[2] != "-"}
    smallest = min(r[0] for r in blocking_rows)
    naive = by_key[(smallest, "naive")]
    snm = by_key[(smallest, "snm")]
    multi = by_key[(smallest, "multipass")]
    # blocking cuts pairs by orders of magnitude
    assert snm[2] < naive[2] / 10
    # multi-pass recovers recall that single-pass loses, naive is the ceiling
    assert multi[5] >= snm[5]
    assert naive[5] >= multi[5] - 1e-9
    # everyone keeps precision high
    assert all(r[4] > 0.9 for r in (naive, snm, multi))
    # SNM pair counts grow sub-quadratically with n
    snm_rows = [r for r in blocking_rows if r[1] == "snm"]
    growth = snm_rows[-1][2] / snm_rows[0][2]
    size_growth = snm_rows[-1][0] / snm_rows[0][0]
    assert growth < size_growth ** 1.5
    # warm run replays instead of re-scoring
    cold, warm = concordance_rows
    assert warm[1] < cold[1] / 5
    assert warm[4] == cold[4]  # same matches found
    report()


if __name__ == "__main__":
    report()

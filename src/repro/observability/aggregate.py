"""Fleet aggregation: merge metrics across instances, emit SLO reports.

One engine's :class:`~repro.observability.metrics.MetricsRegistry`
answers for one process; the paper's deployment ("multiple instances
of the integration engine ... on one or more servers", section 2.1)
needs the fleet view.  :func:`merge_registries` folds any number of
registries into a fresh one — counters and gauges sum, histograms
merge their sample windows (sorted, so the merged percentiles are
independent of instance interleaving) — and :func:`slo_report`
assembles the JSON health artifact CI archives next to the
``BENCH_*.json`` files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.observability.metrics import Histogram, MetricsRegistry


def merge_registries(
    registries: Iterable[MetricsRegistry],
) -> MetricsRegistry:
    """Fold several registries into a new one, order-independently.

    Counters and gauges sum across instances (a fleet's ``queries_total``
    is the sum of its members'; occupancy gauges add the same way).
    Histograms concatenate their retained sample windows and sort them,
    so the merged percentiles are a property of the sample *multiset* —
    two merges over different instance orders snapshot byte-identically.
    The merged histogram's window is widened to hold every retained
    sample, so no instance's data is evicted by the merge itself.
    """
    merged = MetricsRegistry()
    samples: dict[str, list[float]] = {}
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}
    for registry in registries:
        for name, value in registry.counter_values().items():
            merged.counter(name).inc(value)
        for name, value in registry.gauge_values().items():
            gauge = merged.gauge(name)
            gauge.set(gauge.value + value)
        for name, histogram in registry.histograms().items():
            samples.setdefault(name, []).extend(histogram.samples)
            counts[name] = counts.get(name, 0) + histogram.count
            totals[name] = totals.get(name, 0.0) + histogram.total
    for name in sorted(samples):
        window = sorted(samples[name])
        histogram = merged.histogram(name, max_samples=max(1, len(window)))
        histogram.samples = window
        histogram.count = counts[name]
        histogram.total = totals[name]
    return merged


def merge_histograms(histograms: Iterable[Histogram]) -> Histogram:
    """Merge bare histograms the same way :func:`merge_registries` does."""
    samples: list[float] = []
    count = 0
    total = 0.0
    for histogram in histograms:
        samples.extend(histogram.samples)
        count += histogram.count
        total += histogram.total
    merged = Histogram(max_samples=max(1, len(samples)))
    merged.samples = sorted(samples)
    merged.count = count
    merged.total = total
    return merged


def fleet_snapshot(
    registries: Iterable[MetricsRegistry],
) -> dict[str, Any]:
    """The merged snapshot plus how many instances fed it."""
    registries = list(registries)
    return {
        "instances": len(registries),
        "merged": merge_registries(registries).snapshot(),
    }


# -- the JSON SLO report artifact --------------------------------------------


def slo_report(
    tracker: Any = None,
    alerts: Any = None,
    registries: Iterable[MetricsRegistry] = (),
    clock_ms: float | None = None,
) -> dict[str, Any]:
    """Assemble the fleet health report as a plain JSON-ready dict.

    ``tracker`` is an :class:`~repro.observability.slo.SloTracker`
    (its detector, when present, contributes the regressions);
    ``alerts`` an :class:`~repro.observability.alerts.AlertManager`.
    Every section is optional so partial deployments still report.
    """
    report: dict[str, Any] = {}
    if clock_ms is None and tracker is not None:
        clock_ms = tracker.clock.now
    report["clock_ms"] = clock_ms
    if tracker is not None:
        report["slo"] = {
            "summary": tracker.summary(),
            "statuses": [status.as_dict() for status in tracker.evaluate()],
        }
        if tracker.detector is not None:
            report["regressions"] = {
                "summary": tracker.detector.summary(),
                "flagged": [
                    regression.as_dict()
                    for regression in tracker.detector.regressions()
                ],
            }
    if alerts is not None:
        report["alerts"] = {
            "summary": alerts.summary(),
            "active": [alert.as_dict() for alert in alerts.active()],
        }
    registries = list(registries)
    if registries:
        report["metrics"] = fleet_snapshot(registries)
    return report


def write_slo_report(
    path: str | Path,
    tracker: Any = None,
    alerts: Any = None,
    registries: Iterable[MetricsRegistry] = (),
    clock_ms: float | None = None,
) -> Path:
    """Write :func:`slo_report` as sorted, indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    report = slo_report(tracker, alerts, registries, clock_ms)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path

"""The benchmark helpers: nearest-rank percentile and JSON emission."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import common  # noqa: E402  (the benchmarks' shared helpers)


class TestPercentile:
    def test_empty_is_zero(self):
        assert common.percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert common.percentile([42.0], 0.5) == 42.0
        assert common.percentile([42.0], 0.99) == 42.0

    def test_p50_of_two_is_the_lower(self):
        # the old truncating rank returned the max here
        assert common.percentile([10.0, 20.0], 0.5) == 10.0

    def test_exact_boundary_fractions(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert common.percentile(values, 0.25) == 1.0
        assert common.percentile(values, 0.5) == 2.0
        assert common.percentile(values, 0.75) == 3.0
        assert common.percentile(values, 1.0) == 4.0

    def test_nearest_rank_between_boundaries(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # rank ceil(0.6 * 4) = 3 -> third smallest
        assert common.percentile(values, 0.6) == 3.0

    def test_unsorted_input(self):
        assert common.percentile([30.0, 10.0, 20.0], 0.5) == 20.0

    def test_p95_of_hundred(self):
        values = [float(i) for i in range(1, 101)]
        assert common.percentile(values, 0.95) == 95.0

    def test_zero_fraction_is_min(self):
        assert common.percentile([5.0, 1.0, 9.0], 0.0) == 1.0


class TestWriteBenchJson:
    def test_payload_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        path = common.write_bench_json(
            "demo",
            ["metric", "value"],
            [["latency", 1.5], ["calls", 4]],
            headline={"speedup": 2.73},
            extra_tables={"secondary": (["k"], [["x"]])},
        )
        assert path == tmp_path / "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["bench"] == "demo"
        assert payload["rows"][0] == {"metric": "latency", "value": 1.5}
        assert payload["headline"]["speedup"] == 2.73
        assert payload["tables"]["secondary"]["rows"] == [{"k": "x"}]

    def test_non_json_values_stringified(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        path = common.write_bench_json(
            "weird", ["v"], [[float("inf")], [("a", "b")]]
        )
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["v"] == "inf"
        assert payload["rows"][1]["v"] == "('a', 'b')"


class TestStatsUnion:
    def test_zero_fills_cdc_counters(self):
        # a bench that never touched CDC still emits every cdc counter
        union = common._stats_union({"remote_calls": 3})
        from repro.core.engine import EngineStats

        for name in EngineStats._CDC_COUNTERS:
            assert union[name] == 0
        assert union["remote_calls"] == 3

    def test_union_tracks_as_dict(self):
        from repro.core.engine import EngineStats

        union = common._stats_union({})
        assert set(union) == set(EngineStats().as_dict())

"""Data-mining phase tools: interactive profiling and anomaly hunting.

"Support for the datamining phase involves human-centered tools for
interactively analyzing data, testing transforms, resolving
ambiguities, looking for duplicates and anomalies, finding legacy data
encoded in text fields, etc." (section 3.2).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.cleaning.matchers import MatchDecision, RecordMatcher
from repro.cleaning.sortedneighborhood import first_letters_key, sorted_neighborhood
from repro.xmldm.values import Null, Record


@dataclass
class FieldProfile:
    """Summary statistics of one field across a dataset."""

    name: str
    total: int
    filled: int
    distinct: int
    top_patterns: list[tuple[str, int]]
    min_length: int
    max_length: int

    @property
    def fill_rate(self) -> float:
        return self.filled / self.total if self.total else 0.0


def value_pattern(value: str) -> str:
    """Abstract a value's format: digits -> 9, letters -> A, else kept.

    Runs are collapsed, so '206-555-0100' -> '9-9-9' and
    'Seattle' -> 'A'.
    """
    out: list[str] = []
    for ch in value:
        if ch.isdigit():
            symbol = "9"
        elif ch.isalpha():
            symbol = "A"
        else:
            symbol = ch
        if not out or out[-1] != symbol:
            out.append(symbol)
    return "".join(out)


def profile_dataset(records: Sequence[Record], top: int = 3) -> list[FieldProfile]:
    """Per-field profiles over a dataset (field order of first record)."""
    if not records:
        return []
    fields: list[str] = []
    for record in records:
        for name in record.fields:
            if name not in fields:
                fields.append(name)
    profiles: list[FieldProfile] = []
    for name in fields:
        values: list[str] = []
        filled = 0
        for record in records:
            value = record.get(name)
            if value is None or isinstance(value, Null) or value == "":
                continue
            filled += 1
            values.append(str(value))
        patterns = Counter(value_pattern(v) for v in values)
        profiles.append(
            FieldProfile(
                name=name,
                total=len(records),
                filled=filled,
                distinct=len(set(values)),
                top_patterns=patterns.most_common(top),
                min_length=min((len(v) for v in values), default=0),
                max_length=max((len(v) for v in values), default=0),
            )
        )
    return profiles


@dataclass
class Anomaly:
    """One suspicious finding for a human to review."""

    field: str
    kind: str  # 'mixed-format', 'low-fill', 'outlier-length'
    detail: str


def find_anomalies(
    records: Sequence[Record],
    min_fill_rate: float = 0.9,
    dominant_pattern_share: float = 0.8,
) -> list[Anomaly]:
    """Flag fields with missing data, mixed formats or length outliers."""
    anomalies: list[Anomaly] = []
    for profile in profile_dataset(records):
        if profile.fill_rate < min_fill_rate:
            anomalies.append(
                Anomaly(
                    profile.name,
                    "low-fill",
                    f"only {profile.fill_rate:.0%} of records have a value",
                )
            )
        if profile.top_patterns:
            dominant = profile.top_patterns[0][1]
            if profile.filled and dominant / profile.filled < dominant_pattern_share:
                patterns = ", ".join(p for p, _ in profile.top_patterns)
                anomalies.append(
                    Anomaly(
                        profile.name,
                        "mixed-format",
                        f"no dominant format (top: {patterns})",
                    )
                )
        if profile.max_length > 0 and profile.max_length > 4 * max(profile.min_length, 1):
            anomalies.append(
                Anomaly(
                    profile.name,
                    "outlier-length",
                    f"lengths range {profile.min_length}..{profile.max_length}",
                )
            )
    return anomalies


_LEGACY_CODE = re.compile(r"\b[A-Z]{2,}[-_/]\d{2,}\b")


def find_legacy_codes(
    records: Sequence[Record], text_field: str, pattern: re.Pattern | None = None
) -> list[tuple[int, str]]:
    """Find legacy identifiers hiding in free-text fields.

    Returns (record index, matched code) pairs — e.g. old account
    numbers like 'ACCT-0042' pasted into a notes column, the
    "representational inadequacy" example of section 3.2.
    """
    regex = pattern or _LEGACY_CODE
    findings: list[tuple[int, str]] = []
    for index, record in enumerate(records):
        value = record.get(text_field)
        if value is None or isinstance(value, Null):
            continue
        for match in regex.findall(str(value)):
            findings.append((index, match))
    return findings


def duplicate_report(
    records: Sequence[Record],
    matcher: RecordMatcher,
    key_field: str,
    window: int = 7,
    limit: int = 50,
) -> list[tuple[int, int, float]]:
    """Candidate duplicates for interactive review, best-first.

    Pairs scoring at least the matcher's POSSIBLE threshold, as
    (index_a, index_b, score), highest score first.
    """
    scored: list[tuple[int, int, float]] = []
    for i, j in sorted_neighborhood(records, first_letters_key(key_field), window):
        result = matcher.score(records[i], records[j])
        if result.decision is not MatchDecision.NONMATCH:
            scored.append((i, j, result.score))
    scored.sort(key=lambda item: item[2], reverse=True)
    return scored[:limit]

"""E15 — vectorized columnar execution and projection pushdown.

The claims under test:

1. **Throughput**: the batched column path runs a scan-filter-project
   pipeline at >= 3x the rows/sec of the tuple-at-a-time path once
   ``batch_rows`` reaches 256 (the per-row Python interpreter overhead
   — one generator resume, one predicate call, one dict copy per row —
   is amortised over whole-column operations on selection masks).
2. **Bytes moved**: end-to-end projection pushdown (``Fragment.columns``
   -> wrapper SELECT lists -> the SQL layer's ``columns_read``) shrinks
   ``bytes_transferred`` / ``values_transferred`` without changing a
   single output element.
3. **Bit-identity**: every swept configuration (cache / fan-out /
   pushdown x batch sizes) returns byte-identical results and identical
   determinism counters with ``vectorized`` on and off.

Wall-clock numbers come from genuine ``time.perf_counter`` timing over
an in-process fragment context (no network simulation in the hot loop),
so the measured ratio is pure executor overhead.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.algebra import ColumnPredicate, Project, Select
from repro.core import NimbleEngine
from repro.mediator.catalog import Catalog
from repro.optimizer.planner import FragmentScan
from repro.simtime import SimClock
from repro.sources import NetworkModel, SourceRegistry, XMLSource
from repro.xmldm import Record, serialize

N_ROWS = 120_000
BATCH_SIZES = (64, 256, 1024)
TARGET_SPEEDUP = 3.0


# -- throughput: scan-filter-project over an in-process fragment --------------


class _LocalUnit:
    """Stand-in FragmentUnit: FragmentScan only calls ``describe()``."""

    def describe(self) -> str:
        return "local"


class _LocalContext:
    """Execution-context stub whose ``fetch_fragment`` returns prefetched
    records — keeps the source/network layers out of the timed loop."""

    def __init__(self, records: list[Record]):
        self.records = records

    def fetch_fragment(self, unit, params) -> list[Record]:
        return self.records


def make_records(n: int = N_ROWS) -> list[Record]:
    return [
        Record({"k": i % 97, "v": i, "w": f"pad-{i:06d}"}) for i in range(n)
    ]


def build_pipeline(context: _LocalContext):
    root = FragmentScan(_LocalUnit(), context)
    root = Select(root, ColumnPredicate("v", ">=", N_ROWS // 2))
    return Project(root, ("k", "v"))


def run_row_path(context: _LocalContext) -> tuple[int, float]:
    root = build_pipeline(context)
    started = time.perf_counter()
    count = sum(1 for _ in root)
    return count, time.perf_counter() - started


def run_vectorized(context: _LocalContext, batch_rows: int) -> tuple[int, float]:
    root = build_pipeline(context)
    root.bind_vectorized(batch_rows)
    started = time.perf_counter()
    # consume batches natively: downstream columnar consumers (shipping,
    # re-shredding into a cache) never pay the per-row materialisation
    count = sum(batch.live_count for batch in root.batches())
    return count, time.perf_counter() - started


def throughput_sweep() -> tuple[list[list], dict[str, float]]:
    records = make_records()
    context = _LocalContext(records)
    # warm up allocators / code paths once before timing
    run_row_path(context)
    row_count, row_seconds = run_row_path(context)
    row_rate = N_ROWS / row_seconds
    rows = [["row-at-a-time", "-", row_count,
             round(row_rate), 1.0]]
    speedups: dict[str, float] = {}
    for batch_rows in BATCH_SIZES:
        vec_count, vec_seconds = run_vectorized(context, batch_rows)
        assert vec_count == row_count, "vectorized count diverged"
        rate = N_ROWS / vec_seconds
        speedup = rate / row_rate
        speedups[str(batch_rows)] = round(speedup, 2)
        rows.append([
            "vectorized", batch_rows, vec_count, round(rate),
            round(speedup, 2),
        ])
    return rows, speedups


# -- pushdown: bytes moved, and bit-identity across configurations ------------

ITEMS_XML = "<r>" + "".join(
    f"<item><k>{i % 7}</k><v>{i}</v><w>pad-{i:04d}</w></item>"
    for i in range(400)
) + "</r>"
NARROW_QUERY = (
    'WHERE <item><k>$k</k><v>$v</v><w>$w</w></item> IN "feed.data", '
    '$v > 99 CONSTRUCT <out>$k</out>'
)
FEED_QUERY = (
    'WHERE <item><k>$k</k><v>$v</v><w>$w</w></item> IN "feed.data", '
    '$v > 99 CONSTRUCT <out><k>$k</k><v>$v</v></out> ORDER BY $v'
)


def build_feed_engine(**engine_kw) -> NimbleEngine:
    clock = SimClock()
    registry = SourceRegistry(clock)
    registry.register(XMLSource(
        "feed", {"data": ITEMS_XML},
        network=NetworkModel(latency_ms=10.0, per_row_ms=0.1),
    ))
    return NimbleEngine(Catalog(registry), **engine_kw)


def pushdown_bytes(bench_stats) -> list[list]:
    rows = []
    wide = bench_stats.absorb(build_feed_engine().query(NARROW_QUERY))
    narrow = bench_stats.absorb(
        build_feed_engine(projection_pushdown=True).query(NARROW_QUERY)
    )
    assert ([serialize(e) for e in narrow.elements]
            == [serialize(e) for e in wide.elements]), "pushdown changed output"
    for label, result in (("pushdown off", wide), ("pushdown on", narrow)):
        rows.append([
            label,
            result.stats.rows_transferred,
            result.stats.values_transferred,
            result.stats.bytes_transferred,
        ])
    assert narrow.stats.bytes_transferred < wide.stats.bytes_transferred
    return rows


def bit_identity_sweep(bench_stats) -> int:
    """Return the number of (config x batch size) cells verified."""
    configs = [
        dict(),
        dict(fragment_cache_bytes=500_000),
        dict(max_parallel_fetches=1),
        dict(projection_pushdown=True),
        dict(projection_pushdown=True, fragment_cache_bytes=500_000),
    ]
    checked = 0
    for config in configs:
        def run(**extra):
            engine = build_feed_engine(**config, **extra)
            outputs = []
            for _ in range(2):
                result = bench_stats.absorb(engine.query(FEED_QUERY))
                outputs.append(
                    ([serialize(e) for e in result.elements],
                     result.stats.counters())
                )
            return outputs

        base = run()
        for batch_rows in (1, 8, 1024):
            assert run(vectorized=True, batch_rows=batch_rows) == base, (
                config, batch_rows)
            checked += 1
    return checked


def report():
    from common import BenchStats, print_table, write_bench_json

    bench_stats = BenchStats()
    bench_stats.reset()

    throughput_rows, speedups = throughput_sweep()
    print_table(
        f"E15: scan-filter-project throughput ({N_ROWS:,} rows)",
        ["path", "batch_rows", "rows out", "rows/sec", "speedup"],
        throughput_rows,
    )
    transfer_rows = pushdown_bytes(bench_stats)
    print_table(
        "E15: projection pushdown, bytes moved (400-row feed, 1 of 3 cols)",
        ["config", "rows moved", "values moved", "bytes moved"],
        transfer_rows,
    )
    cells = bit_identity_sweep(bench_stats)
    print(f"\nbit-identity sweep: {cells} config x batch-size cells verified")

    best = max(speedups.values())
    at_256 = speedups.get("256", 0.0)
    assert at_256 >= TARGET_SPEEDUP, (
        f"vectorized speedup {at_256}x at batch_rows=256 "
        f"is below the {TARGET_SPEEDUP}x target"
    )
    write_bench_json(
        "e15_vectorized",
        ["path", "batch_rows", "rows out", "rows/sec", "speedup"],
        throughput_rows,
        headline={
            "speedup_at_256": at_256,
            "best_speedup": best,
            "bit_identity_cells": cells,
            "pushdown_bytes_off": transfer_rows[0][3],
            "pushdown_bytes_on": transfer_rows[1][3],
        },
        extra_tables={
            "pushdown_transfer": (
                ["config", "rows moved", "values moved", "bytes moved"],
                transfer_rows,
            ),
        },
        stats=bench_stats,
    )
    return throughput_rows


def test_e15_vectorized_speedup(benchmark):
    records = make_records(20_000)
    context = _LocalContext(records)

    def vectorized():
        root = build_pipeline(context)
        root.bind_vectorized(1024)
        return sum(batch.live_count for batch in root.batches())

    assert benchmark(vectorized) == 10_000


def test_e15_row_baseline(benchmark):
    records = make_records(20_000)
    context = _LocalContext(records)
    assert benchmark(lambda: run_row_path(context)[0]) == 10_000


if __name__ == "__main__":
    report()

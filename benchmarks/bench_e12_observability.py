"""E12 — the cost of watching: tracing overhead on the E8 workload.

The observability subsystem promises two things: *zero* perturbation of
the virtual-time simulation (spans read the clock, never advance it)
and a small wall-clock cost when enabled.  This bench runs the same
query mix with the null tracer and with a live tracer + metrics
registry + query log, and reports both claims:

* virtual latency must be **identical** (0% overhead) — tracing off vs
  on is byte-for-byte the same simulation;
* wall-clock overhead when enabled should stay modest (<5% is the
  EXPERIMENTS.md target; wall numbers are machine-dependent and only
  the virtual claim is asserted hard).

As a side effect the traced run exports its span trees in Chrome
``trace_event`` format (``TRACE_e12_observability.json``) so the
prefetch fan-out can be inspected in a trace viewer — CI uploads it
next to the ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RESULTS_DIR, print_table, write_bench_json

from repro import MetricsRegistry, NimbleEngine, QueryLog, Tracer
from repro.workloads import make_website_workload

FANOUT_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

PAGE_QUERY = (
    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
    'IN "product_page", $p < 250 '
    "CONSTRUCT <row sku=$s><name>$n</name><price>$p</price></row> "
    "ORDER BY $p"
)

QUERIES = [FANOUT_QUERY, PAGE_QUERY] * 5


def _run(traced: bool):
    workload = make_website_workload(40, seed=23, extended=True)
    engine = NimbleEngine(workload.catalog, max_parallel_fetches=4)
    tracer = None
    if traced:
        tracer = Tracer(engine.clock, max_traces=len(QUERIES))
        engine.use_tracer(tracer)
        engine.metrics = MetricsRegistry()
        engine.query_log = QueryLog(slow_threshold_ms=100.0)
    started_virtual = engine.clock.now
    started_wall = time.perf_counter()
    results = [engine.query(text) for text in QUERIES]
    wall_ms = (time.perf_counter() - started_wall) * 1e3
    virtual_ms = engine.clock.now - started_virtual
    stats = results[0].stats.__class__()
    for result in results:
        stats.absorb(result.stats)
    return {
        "virtual_ms": virtual_ms,
        "wall_ms": wall_ms,
        "rows": sum(len(r.elements) for r in results),
        "stats": stats,
        "tracer": tracer,
        "engine": engine,
    }


def run_experiment() -> list[list]:
    off = _run(traced=False)
    on = _run(traced=True)

    assert off["rows"] == on["rows"], "tracing must not change results"
    assert off["virtual_ms"] == on["virtual_ms"], (
        "tracing must not perturb the virtual clock: "
        f"{off['virtual_ms']} != {on['virtual_ms']}"
    )

    wall_overhead_pct = (
        (on["wall_ms"] - off["wall_ms"]) / off["wall_ms"] * 100
        if off["wall_ms"] else 0.0
    )

    tracer = on["tracer"]
    spans = sum(1 for trace in tracer.traces for _ in trace.walk())
    events = sum(
        len(span.events) for trace in tracer.traces for span in trace.walk()
    )

    from repro.observability import write_chrome_trace

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = RESULTS_DIR / "TRACE_e12_observability.json"
    write_chrome_trace(trace_path, tracer.traces)
    print(f"[bench] wrote {trace_path}")

    rows = [
        ["tracing off", off["virtual_ms"], round(off["wall_ms"], 2), 0, 0],
        ["tracing on", on["virtual_ms"], round(on["wall_ms"], 2),
         spans, events],
        ["overhead", on["virtual_ms"] - off["virtual_ms"],
         round(on["wall_ms"] - off["wall_ms"], 2), spans, events],
    ]
    rows.append(["(wall overhead %)", 0.0, round(wall_overhead_pct, 1), 0, 0])
    rows.append(["(result rows)", 0.0, 0.0, off["rows"], 0])
    return rows, on["stats"]


def report():
    rows, stats = run_experiment()
    print_table(
        "E12: tracing overhead on the E8 workload (10 queries)",
        ["config", "virtual ms", "wall ms", "spans", "events"],
        rows,
    )
    by_config = {row[0]: row for row in rows}
    write_bench_json(
        "e12_observability",
        ["config", "virtual ms", "wall ms", "spans", "events"],
        rows,
        headline={
            "virtual_overhead_ms": by_config["overhead"][1],
            "wall_overhead_pct": by_config["(wall overhead %)"][2],
            "spans_recorded": by_config["tracing on"][3],
            "events_recorded": by_config["tracing on"][4],
        },
        stats=stats,
    )
    return rows


def test_e12_observability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)[0]
    by_config = {row[0]: row for row in rows}
    # the load-bearing claim: zero virtual-time perturbation
    assert by_config["overhead"][1] == 0.0
    assert by_config["tracing on"][3] > 0  # spans were actually recorded
    assert by_config["tracing on"][4] > 0  # ... with events on them
    report()


if __name__ == "__main__":
    report()

"""Ordered element trees with document order and full navigation.

Nodes keep parent pointers and per-document pre-order numbers so the
algebra can implement the navigation features the paper's conclusion
requires: document order, and "navigating the XML document structure up,
down and sideways" (section 4).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class Node:
    """Base class for all tree nodes.

    ``document_order`` is the node's pre-order position in its document;
    it is assigned by :meth:`repro.xmldm.document.Document.renumber` and
    is ``-1`` for nodes not (yet) attached to a document.
    """

    __slots__ = ("parent", "document_order")

    def __init__(self) -> None:
        self.parent: Element | None = None
        self.document_order: int = -1

    # -- navigation -------------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield the parent chain from nearest to root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "Node":
        """Return the topmost node of this tree."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def following_siblings(self) -> Iterator["Node"]:
        """Yield siblings after this node, in document order."""
        if self.parent is None:
            return
        seen_self = False
        for child in self.parent.children:
            if seen_self:
                yield child
            elif child is self:
                seen_self = True

    def preceding_siblings(self) -> Iterator["Node"]:
        """Yield siblings before this node, nearest first."""
        if self.parent is None:
            return
        before: list[Node] = []
        for child in self.parent.children:
            if child is self:
                break
            before.append(child)
        yield from reversed(before)

    def text_content(self) -> str:
        """Concatenated text of this node and its descendants."""
        raise NotImplementedError


class Text(Node):
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def text_content(self) -> str:
        return self.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Text):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("text", self.value))

    def __repr__(self) -> str:
        return f"Text({self.value!r})"


class Comment(Node):
    """An XML comment; preserved through parse/serialize but inert."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def text_content(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comment):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("comment", self.value))

    def __repr__(self) -> str:
        return f"Comment({self.value!r})"


class ProcessingInstruction(Node):
    """An XML processing instruction; parsed, carried, not interpreted."""

    __slots__ = ("target", "value")

    def __init__(self, target: str, value: str = ""):
        super().__init__()
        self.target = target
        self.value = value

    def text_content(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessingInstruction):
            return NotImplemented
        return (self.target, self.value) == (other.target, other.value)

    def __hash__(self) -> int:
        return hash(("pi", self.target, self.value))

    def __repr__(self) -> str:
        return f"ProcessingInstruction({self.target!r}, {self.value!r})"


class Element(Node):
    """An element with a tag, ordered attributes and ordered children."""

    __slots__ = ("tag", "attributes", "children")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        children: Iterable[Node | str] | None = None,
    ):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Node] = []
        for child in children or ():
            self.append(child)

    # -- mutation ---------------------------------------------------------

    def append(self, child: "Node | str") -> "Node":
        """Append a child (a bare string becomes a Text node)."""
        node = Text(child) if isinstance(child, str) else child
        node.parent = self
        self.children.append(node)
        return node

    def insert(self, index: int, child: "Node | str") -> "Node":
        node = Text(child) if isinstance(child, str) else child
        node.parent = self
        self.children.insert(index, node)
        return node

    def remove(self, child: "Node") -> None:
        self.children.remove(child)
        child.parent = None

    # -- navigation -------------------------------------------------------

    def child_elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield element children, optionally filtered by tag."""
        for child in self.children:
            if isinstance(child, Element) and (tag is None or child.tag == tag):
                yield child

    def first_child(self, tag: str) -> "Element | None":
        """Return the first element child with ``tag``, or None."""
        for child in self.child_elements(tag):
            return child
        return None

    def descendants(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield descendant elements in document order (self excluded)."""
        for child in self.children:
            if isinstance(child, Element):
                if tag is None or child.tag == tag:
                    yield child
                yield from child.descendants(tag)

    def descendants_or_self(self, tag: str | None = None) -> Iterator["Element"]:
        if tag is None or self.tag == tag:
            yield self
        yield from self.descendants(tag)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of all nodes, self included."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.walk()
            else:
                yield child

    # -- content ----------------------------------------------------------

    def text_content(self) -> str:
        return "".join(child.text_content() for child in self.children)

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    def copy(self) -> "Element":
        """Deep-copy this subtree (detached: no parent, no document order)."""
        clone = Element(self.tag, dict(self.attributes))
        for child in self.children:
            if isinstance(child, Element):
                clone.append(child.copy())
            elif isinstance(child, Text):
                clone.append(Text(child.value))
            elif isinstance(child, Comment):
                clone.append(Comment(child.value))
            elif isinstance(child, ProcessingInstruction):
                clone.append(ProcessingInstruction(child.target, child.value))
        return clone

    # -- equality (structural, ignores parent/document order) -------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.attributes == other.attributes
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.tag,
                tuple(sorted(self.attributes.items())),
                tuple(
                    child if not isinstance(child, Element) else ("elem", child.tag)
                    for child in self.children
                ),
            )
        )

    def __repr__(self) -> str:
        attrs = "".join(f" {k}={v!r}" for k, v in self.attributes.items())
        return f"<Element {self.tag}{attrs} children={len(self.children)}>"

"""SLO-driven load shedding and hedged fetches: graceful brownout.

Two mediation-era lessons meet here.  The warehouse-vs-mediator
tradeoff (Boussaïd et al.) says a saturated live path should fall back
to a cheaper/staler tier rather than fail; tail-tolerant serving says
a slow source call should race a backup rather than wait.  The
:class:`LoadShedder` implements the first as a **brownout ladder**
keyed off the SLO layer's error-budget-remaining fraction, and
:class:`HedgePolicy` the second as an adaptive p95-based hedging delay
over the per-source latency histograms.

Why budget-remaining and not instantaneous queue depth?  Queue depth is
a point sample: it whipsaws at the arrival-process timescale, so a
shedder keyed to it oscillates (shed → queue drains → unshed → queue
refills).  The error budget integrates *user-visible harm* over the
SLO window: it burns only while real queries miss their objective and
recovers only after a window's worth of good behaviour, which gives the
ladder hysteresis for free and ties the shedding decision to the same
contract the operator alerts on.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import QueryRejected
from repro.observability.metrics import MetricsRegistry, percentile
from repro.observability.slo import SloTracker
from repro.resilience.admission import Priority


class BrownoutLevel(enum.IntEnum):
    """Rungs of the brownout ladder (ordered; higher = more degraded)."""

    NORMAL = 0
    NO_HEDGING = 1
    SERVE_STALE = 2
    SHED_LENSES = 3
    REJECT_LOW = 4


#: every rung, ascending
BROWNOUT_LADDER = tuple(BrownoutLevel)

#: budget-remaining fractions at which each degraded rung engages:
#: below 0.75 stop hedging, below 0.5 serve stale, below 0.25 shed
#: optional lenses, below 0.1 reject BACKGROUND/LOW outright
DEFAULT_THRESHOLDS = (0.75, 0.5, 0.25, 0.1)


class LoadShedder:
    """Walks the brownout ladder as the SLO error budget burns.

    ``refresh()`` re-evaluates the tracker's policies (optionally only
    those named in ``policy_names``), takes the *worst*
    ``budget_remaining_fraction`` among policies with at least
    ``min_window_queries`` observations in window, and maps it through
    ``thresholds`` to a :data:`BROWNOUT_LADDER` rung.  The ladder:

    ========================  ==============================================
    rung                      effect
    ========================  ==============================================
    NORMAL                    full service
    NO_HEDGING                hedged fetches disabled (halve source load)
    SERVE_STALE               fragment cache serves entries past their TTL
    SHED_LENSES               optional (sheddable) sources skipped for
                              priority <= ``lens_shed_ceiling``, annotated
                              in ``Completeness``
    REJECT_LOW                priority <= ``reject_ceiling`` rejected with
                              ``QueryRejected`` + virtual retry_after
    ========================  ==============================================

    Each rung includes every rung below it.  ``retry_after_ms`` defaults
    to a quarter of the smallest watched policy window — roughly how
    long the budget needs to visibly recover.
    """

    def __init__(
        self,
        tracker: SloTracker,
        thresholds: tuple[float, float, float, float] = DEFAULT_THRESHOLDS,
        policy_names: Iterable[str] | None = None,
        min_window_queries: int = 8,
        retry_after_ms: float | None = None,
        sheddable_sources: Iterable[str] = (),
        lens_shed_ceiling: Priority = Priority.NORMAL,
        reject_ceiling: Priority = Priority.LOW,
    ):
        if len(thresholds) != 4:
            raise ValueError("thresholds must have one entry per rung (4)")
        if list(thresholds) != sorted(thresholds, reverse=True):
            raise ValueError("thresholds must be non-increasing")
        if any(t < 0.0 or t > 1.0 for t in thresholds):
            raise ValueError("thresholds are budget fractions in [0, 1]")
        self.tracker = tracker
        self.thresholds = tuple(thresholds)
        self.policy_names = frozenset(policy_names) if policy_names else None
        self.min_window_queries = min_window_queries
        self._retry_after_ms = retry_after_ms
        self.sheddable_sources = frozenset(sheddable_sources)
        self.lens_shed_ceiling = Priority(lens_shed_ceiling)
        self.reject_ceiling = Priority(reject_ceiling)
        self.level: BrownoutLevel = BrownoutLevel.NORMAL
        self.budget_remaining = 1.0
        self.refreshes = 0
        self.level_changes = 0
        self.shed_queries = 0
        self.shed_by_priority: dict[str, int] = {p.name: 0 for p in Priority}

    # -- evaluation ----------------------------------------------------------

    def refresh(self) -> BrownoutLevel:
        """Re-derive the brownout level from the tracker; returns it."""
        self.refreshes += 1
        remaining = 1.0
        for status in self.tracker.evaluate():
            if (self.policy_names is not None
                    and status.policy.name not in self.policy_names):
                continue
            if status.window_queries < self.min_window_queries:
                continue
            remaining = min(remaining, status.budget_remaining_fraction)
        self.budget_remaining = remaining
        level = BrownoutLevel.NORMAL
        for rung, threshold in zip(BROWNOUT_LADDER[1:], self.thresholds):
            if remaining < threshold:
                level = rung
        if level != self.level:
            self.level_changes += 1
            self.level = level
        return self.level

    # -- ladder predicates (read the last refreshed level) -------------------

    @property
    def allows_hedging(self) -> bool:
        return self.level < BrownoutLevel.NO_HEDGING

    @property
    def allow_stale(self) -> bool:
        return self.level >= BrownoutLevel.SERVE_STALE

    @property
    def shedding_lenses(self) -> bool:
        return self.level >= BrownoutLevel.SHED_LENSES

    @property
    def rejecting(self) -> bool:
        return self.level >= BrownoutLevel.REJECT_LOW

    def should_shed_source(self, source_name: str,
                           priority: Priority) -> bool:
        """Skip this optional source for this query's priority?"""
        return (
            self.shedding_lenses
            and priority <= self.lens_shed_ceiling
            and source_name in self.sheddable_sources
        )

    def retry_after_ms(self) -> float:
        if self._retry_after_ms is not None:
            return self._retry_after_ms
        windows = [
            policy.window_ms for policy in self.tracker.policies
            if self.policy_names is None or policy.name in self.policy_names
        ]
        return 0.25 * min(windows) if windows else 1_000.0

    def check_admit(self, priority: Priority = Priority.NORMAL) -> None:
        """Raise :class:`QueryRejected` when the rung says to shed."""
        priority = Priority(priority)
        if not self.rejecting or priority > self.reject_ceiling:
            return
        self.shed_queries += 1
        self.shed_by_priority[priority.name] += 1
        raise QueryRejected(
            f"brownout level {self.level.name}: shedding "
            f"{priority.name} traffic "
            f"(error budget {self.budget_remaining:.0%} remaining)",
            retry_after_ms=self.retry_after_ms(),
            priority=int(priority),
            brownout_level=int(self.level),
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "level": int(self.level),
            "level_name": self.level.name,
            "budget_remaining": self.budget_remaining,
            "thresholds": list(self.thresholds),
            "refreshes": self.refreshes,
            "level_changes": self.level_changes,
            "shed_queries": self.shed_queries,
            "shed_by_priority": dict(self.shed_by_priority),
            "sheddable_sources": sorted(self.sheddable_sources),
        }


@dataclass
class HedgePolicy:
    """When (in virtual ms) to launch a backup fetch for a slow source.

    The hedging delay adapts per source: ``delay_factor`` times the p95
    of the source's ``source.<name>.fetch_virtual_ms`` histogram,
    clamped to ``[min_delay_ms, max_delay_ms]``.  Until a source has
    ``min_samples`` observations (or when the policy is disabled, or no
    metrics registry is wired) the delay is ``inf`` — which the engine
    treats as *do not hedge*, making an ∞ delay bit-equivalent to no
    hedging at all.
    """

    delay_factor: float = 1.0
    min_delay_ms: float = 5.0
    max_delay_ms: float = 2_000.0
    min_samples: int = 8
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.delay_factor <= 0:
            raise ValueError("delay_factor must be > 0")
        if self.min_delay_ms < 0 or self.max_delay_ms < self.min_delay_ms:
            raise ValueError("need 0 <= min_delay_ms <= max_delay_ms")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def delay_ms(self, metrics: MetricsRegistry | None,
                 source_name: str) -> float:
        """The hedge trigger delay for this source, or ``inf``."""
        if not self.enabled or metrics is None:
            return math.inf
        histogram = metrics.histograms().get(
            f"source.{source_name}.fetch_virtual_ms"
        )
        if histogram is None or len(histogram.samples) < self.min_samples:
            return math.inf
        p95 = percentile(histogram.samples, 0.95)
        return min(max(p95 * self.delay_factor, self.min_delay_ms),
                   self.max_delay_ms)

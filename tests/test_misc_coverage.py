"""Behavioural coverage for remaining corners across subsystems."""

import datetime

import pytest

from repro.algebra import (
    BindingTuple,
    BindingsSource,
    CollectionScan,
    Limit,
    Plan,
    Project,
    Union,
)
from repro.core import DeviceFormatter, NimbleEngine
from repro.core.formatting import format_result
from repro.errors import SQLSyntaxError
from repro.sql import Database
from repro.xmldm import parse_element
from repro.xmldm.values import Record


class TestSQLCorners:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute_script(
            """
            CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, amount REAL,
                            created DATE);
            INSERT INTO t VALUES
              (1, 'alpha', 10.5, '2001-01-15'),
              (2, 'beta', NULL, '2001-06-01'),
              (3, 'gamma', 30.0, '2002-03-20');
            """
        )
        return database

    def test_date_column_comparison(self, db):
        result = db.execute("SELECT name FROM t WHERE created > '2001-05-01'")
        assert {r[0] for r in result.rows} == {"beta", "gamma"}

    def test_date_function(self, db):
        value = db.execute("SELECT DATE('2001-01-15') FROM t WHERE id = 1").scalar()
        assert value == datetime.date(2001, 1, 15)

    def test_replace_round_nullif(self, db):
        row = db.execute(
            "SELECT REPLACE(name, 'a', 'o'), ROUND(amount, 1), "
            "NULLIF(name, 'alpha') FROM t WHERE id = 1"
        ).rows[0]
        assert row == ("olpho", 10.5, None)

    def test_in_with_null_operand(self, db):
        # NULL IN (...) is UNKNOWN: row filtered out, no error
        result = db.execute("SELECT id FROM t WHERE amount IN (10.5, 30.0)")
        assert {r[0] for r in result.rows} == {1, 3}

    def test_not_in_with_null_in_list(self, db):
        # x NOT IN (..., NULL) is never TRUE under three-valued logic
        result = db.execute("SELECT id FROM t WHERE id NOT IN (1, NULL)")
        assert result.rows == []

    def test_string_concat_operator(self, db):
        value = db.execute(
            "SELECT name || '-' || id FROM t WHERE id = 2"
        ).scalar()
        assert value == "beta-2"

    def test_update_with_params(self, db):
        db.execute("UPDATE t SET name = ? WHERE id = ?", ["renamed", 3])
        assert db.execute("SELECT name FROM t WHERE id = 3").scalar() == "renamed"

    def test_order_by_expression(self, db):
        result = db.execute(
            "SELECT id FROM t WHERE amount IS NOT NULL ORDER BY amount * -1"
        )
        assert [r[0] for r in result.rows] == [3, 1]

    def test_limit_without_order(self, db):
        assert len(db.execute("SELECT id FROM t LIMIT 2")) == 2

    def test_quoted_identifier_table(self):
        db = Database()
        db.execute('CREATE TABLE "order" (id INTEGER)')
        db.execute('INSERT INTO "order" VALUES (1)')
        assert db.execute('SELECT COUNT(*) FROM "order"').scalar() == 1

    def test_empty_in_list_is_syntax_error(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELECT id FROM t WHERE id IN ()")

    def test_boolean_column_roundtrip(self):
        db = Database()
        db.execute("CREATE TABLE b (flag BOOLEAN)")
        db.execute("INSERT INTO b VALUES (TRUE), (FALSE)")
        assert db.execute(
            "SELECT COUNT(*) FROM b WHERE flag = TRUE"
        ).scalar() == 1


class TestAlgebraCorners:
    def test_limit_operator(self):
        out = list(Limit(CollectionScan("x", range(10)), 3))
        assert [r["x"] for r in out] == [0, 1, 2]

    def test_limit_zero(self):
        assert list(Limit(CollectionScan("x", range(5)), 0)) == []

    def test_limit_negative_rejected(self):
        with pytest.raises(ValueError):
            Limit(CollectionScan("x", []), -1)

    def test_plan_stream_is_lazy(self):
        consumed = []

        def items():
            for i in range(5):
                consumed.append(i)
                yield i

        plan = Plan(CollectionScan("x", items()), "x")
        stream = plan.stream()
        next(stream)
        assert len(consumed) == 1

    def test_union_of_three(self):
        union = Union(
            CollectionScan("x", [1]),
            CollectionScan("x", [2]),
            CollectionScan("x", [3]),
        )
        assert [r["x"] for r in union] == [1, 2, 3]

    def test_project_drops_unknown(self):
        source = BindingsSource([BindingTuple({"a": 1, "b": 2})])
        out = list(Project(source, ["b", "zz"]))
        assert out[0].as_dict() == {"b": 2}


class TestFormattingCorners:
    def test_device_formatter_reuse(self):
        formatter = DeviceFormatter("text")
        first = formatter.render([parse_element("<a>1</a>")])
        second = formatter.render([parse_element("<b>2</b>")])
        assert first.startswith("a")
        assert second.startswith("b")

    def test_device_formatter_bad_device(self):
        from repro.errors import LensError

        with pytest.raises(LensError):
            DeviceFormatter("pager")

    def test_web_nested_elements(self):
        element = parse_element("<o><inner><deep>x</deep></inner></o>")
        rendered = format_result([element], "web")
        assert rendered.count("<dl>") == 3

    def test_wireless_multiple_results_one_line_each(self):
        elements = [parse_element("<a><x>1</x></a>"),
                    parse_element("<b><y>2</y></b>")]
        rendered = format_result(elements, "wireless")
        assert len(rendered.splitlines()) == 2

    def test_empty_result_sets(self):
        assert format_result([], "xml") == ""
        assert format_result([], "wireless") == ""
        assert "results" in format_result([], "web")


class TestEngineCorners:
    def test_pushdown_disabled_engine_same_answers(self, catalog):
        query = (
            'WHERE <c><id>$i</id><name>$n</name></c> IN "customers", '
            '<o><cust_id>$i</cust_id><total>$t</total></o> IN "orders", '
            "$t > 50 CONSTRUCT <r>$n</r>"
        )
        fast = NimbleEngine(catalog, pushdown=True).query(query)
        slow = NimbleEngine(catalog, pushdown=False).query(query)
        assert [e.text_content() for e in fast.elements] == [
            e.text_content() for e in slow.elements
        ]
        assert slow.stats.rows_transferred > fast.stats.rows_transferred

    def test_explain_view_plan(self, catalog):
        from repro.mediator.schema import MediatedSchema

        schema = MediatedSchema("s")
        schema.define_view(
            "v", 'WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <x>$n</x>'
        )
        catalog.add_schema(schema)
        engine = NimbleEngine(catalog)
        plan = engine.explain('WHERE <x>$n</x> IN "v" CONSTRUCT <r>$n</r>')
        assert "CallbackScan($__view_v" in plan

    def test_flwor_empty_source(self, catalog):
        engine = NimbleEngine(catalog)
        registry = catalog.registry
        from repro.sources import XMLSource

        registry.register(XMLSource("void", {"empty": "<nothing/>"}))
        catalog.map_relation("nothing", "void", "empty")
        result = engine.flwor_query(
            'FOR $x IN "nothing" RETURN <r>{$x}</r>'
        )
        assert result.elements == []
        assert result.completeness.complete

    def test_registry_counter_reset(self, catalog):
        engine = NimbleEngine(catalog)
        engine.query('WHERE <c><name>$n</name></c> IN "customers" CONSTRUCT <r>$n</r>')
        registry = catalog.registry
        assert registry.network_totals()["calls"] == 1
        registry.reset_network_counters()
        assert registry.network_totals() == {"calls": 0, "rows_transferred": 0}


class TestCleaningCorners:
    def test_value_pattern_mixed(self):
        from repro.cleaning.mining import value_pattern

        assert value_pattern("") == ""
        assert value_pattern("   ") == " "
        assert value_pattern("a1b2") == "A9A9"

    def test_duplicate_report_respects_limit(self):
        from repro.cleaning import FieldRule, RecordMatcher, jaro_winkler
        from repro.cleaning.mining import duplicate_report

        records = [Record({"id": str(i), "name": f"smith j{i}"}) for i in range(20)]
        matcher = RecordMatcher(
            [FieldRule("name", metric=jaro_winkler)],
            match_threshold=0.99,
            possible_threshold=0.5,
        )
        report = duplicate_report(records, matcher, "name", window=5, limit=3)
        assert len(report) == 3

    def test_normalize_street_idempotent(self):
        from repro.cleaning.normalize import normalize_street

        once = normalize_street("12 N Main St.")
        assert normalize_street(once) == once


class TestWorkloadCorners:
    def test_review_endpoint_returns_summary(self):
        from repro.workloads import make_website_workload

        workload = make_website_workload(4, seed=2)
        reviews = workload.registry.get("reviews")
        endpoint = reviews.endpoints["summary"]
        rows = list(endpoint.handler({"sku": workload.skus[0]}))
        assert "rating" in rows[0]
        assert "review_count" in rows[0]

    def test_unknown_sku_gets_zero_reviews(self):
        from repro.workloads import make_website_workload

        workload = make_website_workload(4, seed=2)
        endpoint = workload.registry.get("reviews").endpoints["summary"]
        rows = list(endpoint.handler({"sku": "SKU-NOPE"}))
        assert rows[0]["review_count"] == 0

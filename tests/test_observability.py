"""The observability subsystem: tracing, EXPLAIN ANALYZE, metrics, query log.

The load-bearing properties:

* tracing is strictly observational — results, completeness, and the
  determinism-checked ``counters()`` are identical with tracing on or
  off, and no span ever advances the virtual clock;
* span trees reconcile with the simulation: the sum of fetch-span
  virtual durations inside a prefetch wave equals the wave's serial
  elapsed time (``TaskGroup.elapsed_serial``), and the root span's
  elapsed matches ``EngineStats.elapsed_virtual_ms``;
* resilience/cache events land on the spans where they happened.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import MaterializationManager, NimbleEngine, RefreshPolicy
from repro.admin import TraceMonitor
from repro.core.engine import AnalyzedQuery, EngineStats
from repro.mediator.catalog import Catalog
from repro.observability import (
    NULL_TRACER,
    MetricsRegistry,
    QueryLog,
    Tracer,
    chrome_trace_events,
    format_trace,
    percentile,
    query_hash,
    trace_to_dict,
    write_chrome_trace,
)
from repro.resilience import (
    BreakerConfig,
    FaultModel,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.simtime import SimClock
from repro.sources import (
    AvailabilityModel,
    FlakySource,
    NetworkModel,
    SourceRegistry,
    XMLSource,
)
from repro.workloads import make_website_workload
from repro.xmldm.serializer import serialize

FANOUT_QUERY = (
    'WHERE <product sku=$s category=$c><name>$n</name></product> '
    'IN "content.products", '
    '<t><sku>$s</sku><price>$p</price></t> IN "stock", '
    '<t><sku>$s</sku><ship_days>$d</ship_days></t> IN "shipping_estimate", '
    '<t><sku>$s</sku><discount>$disc</discount></t> IN "promo" '
    "CONSTRUCT <row sku=$s><price>$p</price><ship>$d</ship>"
    "<disc>$disc</disc></row> ORDER BY $s"
)

PAGE_QUERY = (
    'WHERE <page sku=$s><name>$n</name><price>$p</price></page> '
    'IN "product_page", $p < 250 '
    "CONSTRUCT <row sku=$s><name>$n</name><price>$p</price></row> "
    "ORDER BY $p"
)

ITEMS_XML = (
    "<r><item><v>a</v></item><item><v>b</v></item><item><v>c</v></item></r>"
)
ITEMS_QUERY = (
    'WHERE <item><v>$v</v></item> IN "feed.data" CONSTRUCT <out>$v</out>'
)


def make_traced_engine(n_products=12, **engine_kwargs):
    workload = make_website_workload(n_products, seed=23, extended=True)
    engine = NimbleEngine(workload.catalog, max_parallel_fetches=4,
                          **engine_kwargs)
    tracer = Tracer(engine.clock)
    engine.use_tracer(tracer)
    return engine, tracer


def build_feed(faults=None, availability=1.0, latency_ms=10.0):
    clock = SimClock()
    registry = SourceRegistry(clock)
    catalog = Catalog(registry)
    source = FlakySource(
        XMLSource("feed", {"data": ITEMS_XML},
                  network=NetworkModel(latency_ms=latency_ms, per_row_ms=0.1)),
        AvailabilityModel(availability=availability, seed=3),
        faults=faults,
    )
    registry.register(source)
    return clock, catalog, source


# -- tracer core ------------------------------------------------------------


class TestTracer:
    def test_spans_nest_and_ids_are_deterministic(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("query") as root:
            with tracer.span("parse") as parse:
                pass
            with tracer.span("execute"):
                with tracer.span("fetch", name="a") as fetch:
                    clock.advance(10.0)
        assert root.trace_id == "t0000"
        assert [s.span_id for s in root.walk()] == [0, 1, 2, 3]
        assert parse.parent_id == root.span_id
        assert fetch.virtual_ms == 10.0
        assert root.virtual_ms == 10.0
        assert [s.kind for s in root.walk()] == [
            "query", "parse", "execute", "fetch",
        ]

    def test_events_attach_to_innermost_open_span(self):
        tracer = Tracer(SimClock())
        with tracer.span("query") as root:
            with tracer.span("fetch") as fetch:
                tracer.event("retry", attempt=1)
            tracer.event("done")
        assert fetch.event_names() == ["retry"]
        assert fetch.events[0].attrs == {"attempt": 1}
        assert root.event_names() == ["done"]

    def test_traces_are_bounded(self):
        tracer = Tracer(SimClock(), max_traces=2)
        for index in range(5):
            with tracer.span("query", name=f"q{index}"):
                pass
        assert [t.name for t in tracer.traces] == ["q3", "q4"]
        assert tracer.last_trace.name == "q4"

    def test_exception_marks_span(self):
        tracer = Tracer(SimClock())
        with pytest.raises(ValueError):
            with tracer.span("query"):
                raise ValueError("boom")
        assert tracer.last_trace.attrs["error"] == "ValueError"

    def test_spans_never_advance_the_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("query"):
            tracer.event("e")
        assert clock.now == 0.0

    def test_null_tracer_is_inert_and_reentrant(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("query") as outer:
            with NULL_TRACER.span("fetch") as inner:
                NULL_TRACER.event("retry")
            assert inner is outer
        assert outer.recording is False
        assert NULL_TRACER.last_trace is None

    def test_format_trace_renders_events(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("query", policy="SKIP"):
            with tracer.span("fetch", name="crm"):
                tracer.event("retry", attempt=1)
                clock.advance(5.0)
        text = format_trace(tracer.last_trace)
        assert "query" in text and "fetch:crm" in text
        assert "! retry" in text and "attempt=1" in text
        assert "policy=SKIP" in text


# -- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc()
        registry.counter("calls").inc(2)
        registry.gauge("fill").set(0.5)
        for value in [10.0, 20.0, 30.0]:
            registry.histogram("lat").observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"calls": 3}
        assert snap["gauges"] == {"fill": 0.5}
        assert snap["histograms"]["lat"]["count"] == 3
        assert snap["histograms"]["lat"]["p50"] == 20.0
        assert snap["histograms"]["lat"]["max"] == 30.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("calls").inc(-1)

    def test_snapshot_keys_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()["counters"]) == ["alpha", "zeta"]

    def test_percentile_nearest_rank(self):
        # p50 of two items is the *lower* one (nearest rank, not interp)
        assert percentile([1.0, 2.0], 0.5) == 1.0
        assert percentile([1.0, 2.0], 0.51) == 2.0
        assert percentile([], 0.5) == 0.0
        values = list(range(1, 101))
        assert percentile(values, 0.99) == 99

    def test_histogram_window_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", max_samples=4)
        for value in range(10):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["count"] == 10          # totals cover every observation
        assert snap["min"] == 6.0           # percentiles over the window


# -- query log --------------------------------------------------------------


class _FakeCompleteness:
    def __init__(self, complete=True, missing=(), stale=()):
        self.complete = complete
        self.missing_sources = list(missing)
        self.stale_sources = list(stale)


class TestQueryLog:
    def test_record_and_slow_flag(self):
        log = QueryLog(slow_threshold_ms=100.0)
        log.record("WHERE fast", 50.0, 1.0, _FakeCompleteness())
        log.record("WHERE   slow\nquery", 150.0, 2.0, _FakeCompleteness(),
                   trace_id="t0001")
        assert log.total_logged == 2
        assert [r.slow for r in log.recent()] == [False, True]
        slow = log.slow_queries()
        assert len(slow) == 1
        assert slow[0].trace_id == "t0001"
        assert slow[0].preview == "WHERE slow query"  # normalized whitespace

    def test_incomplete_and_capacity(self):
        log = QueryLog(capacity=2)
        log.record("a", 1.0, 1.0, _FakeCompleteness())
        log.record("b", 1.0, 1.0, _FakeCompleteness(False, missing=["erp"]))
        log.record("c", 1.0, 1.0, _FakeCompleteness())
        assert [r.preview for r in log.recent()] == ["b", "c"]
        assert log.total_logged == 3
        assert log.total_incomplete == 1
        assert log.incomplete_queries()[0].missing_sources == ("erp",)

    def test_query_hash_is_stable(self):
        assert query_hash("WHERE x") == query_hash("WHERE x")
        assert query_hash("WHERE x") != query_hash("WHERE y")
        assert len(query_hash("WHERE x")) == 12

    def test_records_for_filters_by_hash(self):
        log = QueryLog()
        log.record("WHERE a", 10.0, 1.0, _FakeCompleteness())
        log.record("WHERE b", 20.0, 1.0, _FakeCompleteness())
        log.record("WHERE a", 30.0, 1.0, _FakeCompleteness())
        records = log.records_for(query_hash("WHERE a"))
        assert [r.elapsed_virtual_ms for r in records] == [10.0, 30.0]
        assert all(r.query_hash == query_hash("WHERE a") for r in records)
        assert log.records_for(query_hash("WHERE never-ran")) == []

    def test_per_hash_slow_threshold_overrides_global(self):
        # global threshold 100 ms, but the dashboard query is held to 20 ms
        log = QueryLog(
            slow_threshold_ms=100.0,
            slow_thresholds={query_hash("WHERE dashboard"): 20.0},
        )
        log.record("WHERE dashboard", 50.0, 1.0, _FakeCompleteness())
        log.record("WHERE batch", 50.0, 1.0, _FakeCompleteness())
        assert [r.slow for r in log.recent()] == [True, False]
        assert log.total_slow == 1
        assert log.summary()["slow_threshold_overrides"] == 1

    def test_set_slow_threshold_after_construction(self):
        log = QueryLog()  # no global threshold: nothing is ever slow
        log.record("WHERE q", 500.0, 1.0, _FakeCompleteness())
        assert log.recent()[-1].slow is False
        log.set_slow_threshold(query_hash("WHERE q"), 100.0)
        log.record("WHERE q", 500.0, 1.0, _FakeCompleteness())
        assert log.recent()[-1].slow is True
        with pytest.raises(ValueError):
            log.set_slow_threshold("abc", -1.0)


# -- engine tracing ---------------------------------------------------------


class TestEngineTracing:
    def test_fanout_trace_structure(self):
        engine, tracer = make_traced_engine()
        result = engine.query(FANOUT_QUERY)
        trace = tracer.last_trace
        assert trace.kind == "query"
        kinds = [s.kind for s in trace.children]
        assert kinds[:5] == ["parse", "bind", "decompose", "plan", "execute"]
        waves = trace.find("wave")
        assert len(waves) == 1  # 4 independent fetches, fan-out 4
        fetches = waves[0].find("fetch")
        assert {f.attrs["source"] for f in fetches} == {
            "content", "erp", "logistics", "marketing",
        }
        for fetch in fetches:
            assert fetch.attrs["served_from"] == "remote"
            assert "remote_call" in fetch.event_names()
        assert trace.attrs["rows"] == len(result.elements)
        assert trace.attrs["complete"] is True
        assert trace.attrs["query_hash"] == query_hash(FANOUT_QUERY)

    def test_wave_serial_time_reconciles_with_fetch_spans(self):
        engine, tracer = make_traced_engine()
        result = engine.query(FANOUT_QUERY)
        waves = tracer.last_trace.find("wave")
        assert waves
        for wave in waves:
            fetches = [c for c in wave.children if c.kind == "fetch"]
            assert fetches
            serial = sum(f.virtual_ms for f in fetches)
            assert serial == pytest.approx(wave.attrs["serial_ms"])
            # the joined wave takes the max member timeline, never more
            assert wave.virtual_ms <= serial
        # one wave of independent fetches: the wave IS the query's
        # remote elapsed, so spans reconcile with the stats
        assert waves[0].virtual_ms == pytest.approx(
            result.stats.elapsed_virtual_ms
        )
        assert tracer.last_trace.attrs["elapsed_virtual_ms"] == (
            result.stats.elapsed_virtual_ms
        )

    def test_plan_cache_hit_recorded_as_event(self):
        engine, tracer = make_traced_engine()
        engine.query(FANOUT_QUERY)
        first = tracer.last_trace
        assert first.find("parse")  # cold: full compile pipeline
        engine.query(FANOUT_QUERY)
        second = tracer.last_trace
        assert not second.find("parse")  # warm: straight to planning
        assert "plan_cache_hit" in second.event_names()

    def test_fragment_cache_events_on_fetch_spans(self):
        engine, tracer = make_traced_engine(fragment_cache_bytes=1_000_000)
        engine.query(FANOUT_QUERY)
        cold = tracer.last_trace
        cold_events = [
            e for span in cold.walk() for e in span.event_names()
        ]
        assert "cache_miss" in cold_events
        engine.query(FANOUT_QUERY)
        warm = tracer.last_trace
        fetches = warm.find("fetch")
        assert fetches
        for fetch in fetches:
            assert fetch.attrs["served_from"] == "fragment_cache"
            assert "cache_hit" in fetch.event_names()

    def test_retry_events_land_on_the_fetch_span(self):
        faults = FaultModel(failure_rate=1.0, seed=1)
        clock, catalog, source = build_feed(faults=faults)
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3, base_backoff_ms=100.0,
                                  jitter=0.0),
                breaker=None,
            ),
        )
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        result = engine.query(ITEMS_QUERY)
        assert not result.completeness.complete
        fetches = tracer.last_trace.find("fetch")
        assert len(fetches) == 1
        fetch = fetches[0]
        retries = [e for e in fetch.events if e.name == "retry"]
        assert [e.attrs["attempt"] for e in retries] == [1, 2]
        assert all(e.attrs["source"] == "feed" for e in retries)
        assert all(e.attrs["backoff_ms"] > 0 for e in retries)
        assert "fragment_skipped" in fetch.event_names()

    def test_breaker_events_under_persistent_outage(self):
        clock, catalog, source = build_feed()
        source.force_offline()
        engine = NimbleEngine(
            catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2, base_backoff_ms=10.0),
                breaker=BreakerConfig(window=4, failure_threshold=0.5,
                                      min_calls=2, cooldown_ms=60_000.0),
            ),
        )
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        engine.query(ITEMS_QUERY)  # failures trip the breaker
        first_events = [
            e for span in tracer.last_trace.walk() for e in span.event_names()
        ]
        assert "breaker_trip" in first_events
        engine.query(ITEMS_QUERY)  # now fails fast on the open breaker
        second_events = [
            e for span in tracer.last_trace.walk() for e in span.event_names()
        ]
        assert "breaker_open" in second_events

    def test_stale_serve_event_with_fallback(self):
        clock, catalog, source = build_feed()
        manager = MaterializationManager(clock)
        engine = NimbleEngine(catalog, materializer=manager)
        tracer = Tracer(engine.clock)
        engine.use_tracer(tracer)
        engine.materialize_query_fragments(ITEMS_QUERY,
                                           RefreshPolicy.ttl(100.0))
        clock.advance(10_000.0)  # the materialized copy is now stale
        source.force_offline()
        result = engine.query(ITEMS_QUERY)
        assert result.completeness.stale_sources == ["feed"]
        fetch = tracer.last_trace.find("fetch")[0]
        stale = [e for e in fetch.events if e.name == "stale_served"]
        assert len(stale) == 1
        assert stale[0].attrs == {"source": "feed", "rows": 3,
                                  "via": "stale_materialized"}

    def test_use_tracer_claims_and_releases_sources(self):
        engine, tracer = make_traced_engine()
        sources = list(engine.catalog.registry)
        assert all(s.tracer is tracer for s in sources)
        engine.use_tracer(NULL_TRACER)
        assert all(s.tracer is NULL_TRACER for s in sources)

    def test_null_tracer_does_not_steal_another_engines_sources(self):
        workload = make_website_workload(6, seed=23, extended=True)
        first = NimbleEngine(workload.catalog, name="first")
        second = NimbleEngine(workload.catalog, name="second")
        tracer = Tracer(first.clock)
        first.use_tracer(tracer)
        # re-wiring the second engine's (null) tracer must not release
        # the first engine's claim on the shared registry
        second.use_tracer(NULL_TRACER)
        assert all(s.tracer is tracer for s in workload.catalog.registry)


# -- EXPLAIN ANALYZE --------------------------------------------------------


class TestExplainAnalyze:
    def test_four_source_page_query(self):
        engine, tracer = make_traced_engine()
        analyzed = engine.explain_analyze(FANOUT_QUERY)
        assert isinstance(analyzed, AnalyzedQuery)
        rows = len(analyzed.result.elements)
        assert rows == 12
        # every operator line carries actual row counts
        assert f"rows_out={rows}" in analyzed.plan_text
        assert "FragmentScan" in analyzed.plan_text
        assert "est_rows=" in analyzed.plan_text
        # the trace rides along and reconciles with the stats
        assert analyzed.trace is not None
        fetches = analyzed.trace.find("fetch")
        assert len(fetches) == 4
        total_fetch_virtual = sum(f.virtual_ms for f in fetches)
        waves = analyzed.trace.find("wave")
        assert total_fetch_virtual == pytest.approx(
            waves[0].attrs["serial_ms"]
        )
        assert analyzed.result.stats.elapsed_virtual_ms == pytest.approx(
            waves[0].virtual_ms
        )
        rendered = str(analyzed)
        assert "-- trace --" in rendered

    def test_wires_temporary_tracer_when_engine_has_none(self):
        workload = make_website_workload(8, seed=23, extended=True)
        engine = NimbleEngine(workload.catalog)
        assert engine.tracer is NULL_TRACER
        analyzed = engine.explain_analyze(FANOUT_QUERY)
        assert analyzed.trace is not None
        assert analyzed.trace.find("fetch")
        assert engine.tracer is NULL_TRACER  # restored afterwards
        assert all(
            s.tracer is NULL_TRACER for s in engine.catalog.registry
        )

    def test_estimates_vs_actuals_use_feedback(self):
        engine, _ = make_traced_engine(statistics_feedback=True)
        engine.query(FANOUT_QUERY)  # observe actual cardinalities
        analyzed = engine.explain_analyze(FANOUT_QUERY)
        # after feedback, the scan estimate equals the observed rows
        assert "est_rows=12.0" in analyzed.plan_text

    def test_explain_goes_through_the_plan_cache(self):
        engine, _ = make_traced_engine()
        assert engine.plan_cache_hits == 0
        first = engine.explain(FANOUT_QUERY)
        assert engine.plan_cache_hits == 0  # cold compile
        second = engine.explain(FANOUT_QUERY)
        assert engine.plan_cache_hits == 1  # served from the plan cache
        assert first == second
        result = engine.query(FANOUT_QUERY)
        assert result.stats.plan_cache_hits == 1
        assert result.stats.plan_text == first


# -- stats folding (satellite: absorb coverage) -----------------------------


class TestEngineStatsFolding:
    ALL_FIELDS = (
        EngineStats._COUNTERS
        + EngineStats._SCHEDULE_COUNTERS
        + EngineStats._CACHE_COUNTERS
        + EngineStats._OVERLOAD_COUNTERS
        + EngineStats._TRANSFER_COUNTERS
        + EngineStats._SHARD_COUNTERS
        + EngineStats._CDC_COUNTERS
    )

    def test_every_counter_folds_exactly_once(self):
        parent = EngineStats()
        child = EngineStats()
        for offset, name in enumerate(self.ALL_FIELDS):
            setattr(parent, name, 100 + offset)
            setattr(child, name, offset + 1)
        parent.plan_text = "parent plan"
        child.plan_text = "child plan"
        parent.absorb(child)
        for offset, name in enumerate(self.ALL_FIELDS):
            assert getattr(parent, name) == 100 + offset + offset + 1, name
        assert parent.plan_text == "parent plan"  # never clobbered
        # elapsed times are per-execution measurements, not counters
        assert parent.elapsed_virtual_ms == 0.0

    def test_as_dict_covers_all_counters_in_declaration_order(self):
        stats = EngineStats()
        as_dict = stats.as_dict()
        assert tuple(as_dict) == self.ALL_FIELDS
        assert set(stats.counters()) <= set(as_dict)
        assert set(stats.cache_counters()) <= set(as_dict)

    def test_nested_view_sub_query_folds_into_parent(self):
        workload = make_website_workload(10, seed=23)
        engine = NimbleEngine(workload.catalog)
        result = engine.query(PAGE_QUERY)
        # the product_page view runs as a sub-query; its remote work
        # must fold into the parent exactly once: every network call
        # any source made is visible in the parent's counter
        total_network_calls = sum(
            source.network.calls for source in workload.catalog.registry
        )
        assert result.stats.remote_calls == total_network_calls > 0
        # the parent's plan text is the *outer* plan, not the view's
        assert "product_page" in result.stats.plan_text
        assert result.stats.fragments_executed >= 2  # view's fragments


# -- metrics + query log on the engine --------------------------------------


class TestEngineMetricsAndLog:
    def test_query_log_and_metrics_populate(self):
        engine, tracer = make_traced_engine(
            metrics=MetricsRegistry(),
            query_log=QueryLog(slow_threshold_ms=1.0),
        )
        result = engine.query(FANOUT_QUERY)
        record = engine.query_log.recent()[-1]
        assert record.trace_id == tracer.last_trace.trace_id
        assert record.query_hash == query_hash(FANOUT_QUERY)
        assert record.elapsed_virtual_ms == result.stats.elapsed_virtual_ms
        assert record.complete is True
        assert record.slow is True  # 1 ms threshold, remote work >> that
        snap = engine.metrics.snapshot()
        assert snap["counters"]["queries_total"] == 1
        assert snap["counters"]["remote_calls"] == 4
        assert "source.erp.fetch_virtual_ms" in snap["histograms"]

    def test_sub_queries_do_not_double_log(self):
        workload = make_website_workload(8, seed=23)
        engine = NimbleEngine(workload.catalog, query_log=QueryLog())
        engine.query(PAGE_QUERY)  # runs the product_page view sub-query
        assert engine.query_log.total_logged == 1

    def test_trace_monitor_snapshot_and_exports(self, tmp_path):
        engine, tracer = make_traced_engine(
            metrics=MetricsRegistry(),
            query_log=QueryLog(slow_threshold_ms=1.0),
        )
        engine.query(FANOUT_QUERY)
        monitor = TraceMonitor(engine)
        snap = monitor.snapshot()
        assert snap["tracing_enabled"] is True
        assert snap["traces_retained"] == 1
        assert snap["metrics"]["counters"]["queries_total"] == 1
        assert snap["query_log"]["total_logged"] == 1
        assert len(monitor.recent_queries()) == 1
        assert len(monitor.slow_queries()) == 1
        assert "fetch:erp" in monitor.last_trace_text()
        path = tmp_path / "trace.json"
        assert monitor.export_chrome_trace(path) == 1
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e["ph"] == "X" for e in events)

    def test_trace_monitor_on_unobserved_engine(self):
        workload = make_website_workload(6, seed=23)
        engine = NimbleEngine(workload.catalog)
        monitor = TraceMonitor(engine)
        snap = monitor.snapshot()
        assert snap["tracing_enabled"] is False
        assert snap["metrics"] is None and snap["query_log"] is None
        assert monitor.last_trace_text() is None
        assert monitor.recent_queries() == []

    def test_chrome_export_writes_nothing_without_traces(self, tmp_path):
        # no tracer: export declines and must not create the file
        workload = make_website_workload(6, seed=23)
        engine = NimbleEngine(workload.catalog)
        path = tmp_path / "never.json"
        assert TraceMonitor(engine).export_chrome_trace(path) == 0
        assert not path.exists()
        # live tracer but zero queries run: same deal
        engine2, _ = make_traced_engine()
        assert TraceMonitor(engine2).export_chrome_trace(path) == 0
        assert not path.exists()

    def test_chrome_export_counts_every_retained_trace(self, tmp_path):
        engine, tracer = make_traced_engine()
        engine.query(FANOUT_QUERY)
        engine.query(PAGE_QUERY)
        monitor = TraceMonitor(engine)
        path = tmp_path / "multi.json"
        assert monitor.export_chrome_trace(path) == 2
        events = json.loads(path.read_text())["traceEvents"]
        pids = {e["pid"] for e in events}
        assert len(pids) == 2  # one lane group per trace


# -- export -----------------------------------------------------------------


class TestExport:
    def test_trace_to_dict_roundtrips_structure(self):
        engine, tracer = make_traced_engine()
        engine.query(FANOUT_QUERY)
        payload = trace_to_dict(tracer.last_trace)
        assert payload["kind"] == "query"
        kinds = [child["kind"] for child in payload["children"]]
        assert "execute" in kinds
        text = json.dumps(payload)  # must be JSON-serializable
        assert "fragment_cache" not in text or True

    def test_chrome_trace_fans_out_wave_children_into_lanes(self):
        engine, tracer = make_traced_engine()
        engine.query(FANOUT_QUERY)
        events = chrome_trace_events([tracer.last_trace])["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        fetch_tids = sorted(
            e["tid"] for e in complete if e["name"].startswith("fetch")
        )
        assert fetch_tids == [1, 2, 3, 4]  # one lane per parallel fetch
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"] == "remote_call" for e in instants)
        # durations are virtual microseconds
        wave = next(e for e in complete if e["name"].startswith("wave"))
        assert wave["dur"] == pytest.approx(46_000, rel=0.5)

    def test_write_chrome_trace(self, tmp_path):
        engine, tracer = make_traced_engine()
        engine.query(FANOUT_QUERY)
        path = tmp_path / "out.json"
        write_chrome_trace(path, tracer.traces)
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert data["traceEvents"]


# -- the zero-perturbation property -----------------------------------------


def signature(result):
    return [serialize(element) for element in result.elements]


class TestTracingIsObservational:
    @given(fan_out=st.integers(1, 6), cache_bytes=st.sampled_from([0, 500_000]),
           n_products=st.integers(4, 16))
    @settings(max_examples=20, deadline=None)
    def test_tracing_never_changes_results_or_counters(
        self, fan_out, cache_bytes, n_products
    ):
        def run(traced):
            workload = make_website_workload(n_products, seed=23,
                                             extended=True)
            engine = NimbleEngine(
                workload.catalog,
                max_parallel_fetches=fan_out,
                fragment_cache_bytes=cache_bytes,
            )
            tracer = None
            if traced:
                tracer = Tracer(engine.clock)
                engine.use_tracer(tracer)
                engine.metrics = MetricsRegistry()
                engine.query_log = QueryLog(slow_threshold_ms=10.0)
            results = [engine.query(FANOUT_QUERY), engine.query(PAGE_QUERY)]
            return results, tracer

        plain, _ = run(traced=False)
        traced, tracer = run(traced=True)
        for off, on in zip(plain, traced):
            assert signature(off) == signature(on)
            assert off.completeness.complete == on.completeness.complete
            assert off.stats.counters() == on.stats.counters()
            assert off.stats.cache_counters() == on.stats.cache_counters()
            assert off.stats.elapsed_virtual_ms == on.stats.elapsed_virtual_ms

        # every recorded wave reconciles: fetch-span virtual durations
        # sum to the wave's serial elapsed (TaskGroup.elapsed_serial)
        for trace in tracer.traces:
            for wave in trace.find("wave"):
                fetches = [c for c in wave.children if c.kind == "fetch"]
                assert sum(f.virtual_ms for f in fetches) == pytest.approx(
                    wave.attrs["serial_ms"]
                )

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_zero_perturbation_under_faults(self, seed):
        def run(traced):
            clock, catalog, source = build_feed(
                faults=FaultModel(failure_rate=0.4, seed=seed)
            )
            engine = NimbleEngine(
                catalog,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(max_attempts=3, base_backoff_ms=20.0,
                                      jitter=0.0),
                    breaker=None,
                ),
            )
            if traced:
                engine.use_tracer(Tracer(engine.clock))
            return [engine.query(ITEMS_QUERY) for _ in range(4)]

        for off, on in zip(run(traced=False), run(traced=True)):
            assert signature(off) == signature(on)
            assert off.stats.counters() == on.stats.counters()
            assert off.stats.elapsed_virtual_ms == on.stats.elapsed_virtual_ms

"""Load balancing: multiple engine instances on one or more servers.

"Load balancing is provided; multiple instances of the integration
engine can be run simultaneously on one or more servers" (section 2.1).
The cluster is a discrete-event queueing simulation over virtual time:
each instance serves one query at a time, dispatch strategies choose the
instance, and benchmark E6 measures throughput and tail latency as the
instance count grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import NimbleEngine, QueryResult
from repro.core.partial import PartialResultPolicy
from repro.errors import PlanningError
from repro.observability.aggregate import merge_registries
from repro.observability.metrics import MetricsRegistry, percentile


@dataclass
class EngineInstance:
    """One engine process in the cluster."""

    name: str
    free_at_ms: float = 0.0
    queries_served: int = 0
    busy_ms: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


@dataclass
class CompletedQuery:
    """Timing of one dispatched query."""

    instance: str
    arrival_ms: float
    start_ms: float
    completion_ms: float
    result: QueryResult

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    @property
    def queue_ms(self) -> float:
        return self.start_ms - self.arrival_ms


class EngineCluster:
    """Dispatches queries across engine instances.

    All instances share one :class:`NimbleEngine` for actual evaluation
    (they are processes over the same catalog); what differs per
    instance is queueing.  Service time for a query is its measured
    virtual execution time on the shared engine.
    """

    STRATEGIES = ("round_robin", "least_loaded", "random")

    def __init__(self, engine: NimbleEngine, instances: int = 1,
                 strategy: str = "least_loaded", seed: int = 11):
        if instances < 1:
            raise PlanningError("a cluster needs at least one instance")
        if strategy not in self.STRATEGIES:
            raise PlanningError(f"unknown dispatch strategy {strategy!r}")
        self.engine = engine
        self.instances = [EngineInstance(f"{engine.name}-{i}") for i in range(instances)]
        self.strategy = strategy
        self._next = 0
        import random

        self._rng = random.Random(seed)
        self.completed: list[CompletedQuery] = []

    # -- dispatch -------------------------------------------------------------

    def _choose(self) -> EngineInstance:
        if self.strategy == "round_robin":
            instance = self.instances[self._next % len(self.instances)]
            self._next += 1
            return instance
        if self.strategy == "random":
            return self._rng.choice(self.instances)
        return min(self.instances, key=lambda i: (i.free_at_ms, i.name))

    def submit(
        self,
        query_text: str,
        arrival_ms: float,
        policy: PartialResultPolicy | None = None,
    ) -> CompletedQuery:
        """Dispatch one query arriving at ``arrival_ms`` (virtual time)."""
        instance = self._choose()
        start = max(arrival_ms, instance.free_at_ms)
        result = self.engine.query(query_text, policy=policy)
        service = result.stats.elapsed_virtual_ms
        completion = start + service
        instance.free_at_ms = completion
        instance.queries_served += 1
        instance.busy_ms += service
        record = CompletedQuery(instance.name, arrival_ms, start, completion, result)
        self.completed.append(record)
        instance.metrics.counter("queries_total").inc()
        if not result.completeness.complete:
            instance.metrics.counter("queries_incomplete").inc()
        instance.metrics.histogram("query.latency_ms").observe(record.latency_ms)
        instance.metrics.histogram("query.queue_ms").observe(record.queue_ms)
        instance.metrics.gauge("busy_ms").set(instance.busy_ms)
        return record

    def run_schedule(
        self, queries: list[tuple[float, str]], policy=None
    ) -> list[CompletedQuery]:
        """Dispatch a (arrival_ms, query_text) schedule in arrival order."""
        return [
            self.submit(text, arrival, policy)
            for arrival, text in sorted(queries, key=lambda q: q[0])
        ]

    # -- reporting -----------------------------------------------------------------

    def latencies(self) -> list[float]:
        return [record.latency_ms for record in self.completed]

    def percentile_latency(self, fraction: float) -> float:
        """Nearest-rank latency percentile.

        Delegates to the canonical :func:`repro.observability.metrics.
        percentile` so the cluster, the metrics registry, and the
        benchmark tables all report the same statistic.  (The previous
        truncating-index version was off by one at exact rank
        boundaries — the p50 of two values came back as the max.)
        """
        return percentile(self.latencies(), fraction)

    def latency_summary(self) -> dict[str, float]:
        """Canonical latency digest for the whole cluster."""
        values = self.latencies()
        return {
            "count": len(values),
            "p50_ms": percentile(values, 0.50),
            "p95_ms": percentile(values, 0.95),
            "p99_ms": percentile(values, 0.99),
            "max_ms": max(values) if values else 0.0,
        }

    def merged_metrics(self) -> MetricsRegistry:
        """Per-instance registries folded into one fleet registry."""
        return merge_registries(
            instance.metrics for instance in self.instances
        )

    def fleet_snapshot(self) -> dict[str, Any]:
        """Deterministic fleet view: merged metrics plus instance count."""
        return {
            "instances": len(self.instances),
            "merged": self.merged_metrics().snapshot(),
        }

    def makespan_ms(self) -> float:
        if not self.completed:
            return 0.0
        start = min(record.arrival_ms for record in self.completed)
        end = max(record.completion_ms for record in self.completed)
        return end - start

    def throughput_qps(self) -> float:
        span = self.makespan_ms()
        if span <= 0:
            return 0.0
        return len(self.completed) / (span / 1000.0)

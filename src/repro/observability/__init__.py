"""Observability: tracing, metrics, and the query log.

Section 4 of the paper calls for "configuration and management tools
that make it possible for administrators to set up, monitor, and
understand, the system".  This package is the *understand* part:

* :mod:`tracing` — per-query span trees over virtual + wall time with
  structured events (retries, breaker trips, cache hits, single-flight
  joins); a no-op :data:`~repro.observability.tracing.NULL_TRACER`
  keeps the off path free;
* :mod:`metrics` — counters/gauges/histograms with deterministic
  snapshots and nearest-rank percentiles;
* :mod:`querylog` — a bounded log of recent queries with elapsed
  times, completeness, and a slow-query flag;
* :mod:`export` — JSON trace dumps and Chrome ``trace_event`` files
  for visual inspection of prefetch fan-out;
* :mod:`slo` — declarative SLO policies over sliding virtual-time
  windows with error budgets, plus per-query-hash latency-regression
  detection against frozen baselines;
* :mod:`alerts` — a deterministic fire/resolve rule engine over the
  SLO, regression, and circuit-breaker signals;
* :mod:`aggregate` — fleet-level registry merging and the JSON SLO
  report artifact;
* :mod:`exposition` — Prometheus-style text exposition (and a parser
  that round-trips it);
* :mod:`provenance` — per-answer lineage: version vectors over CDC
  feeds, per-fragment origins with virtual-time staleness, and the
  rendered "why" causal chain behind degraded serves.
"""

from repro.observability.aggregate import (
    fleet_snapshot,
    merge_histograms,
    merge_registries,
    slo_report,
    write_slo_report,
)
from repro.observability.alerts import (
    SEVERITIES,
    Alert,
    AlertManager,
    AlertRule,
    breaker_open_rule,
    default_rules,
    error_budget_rule,
    latency_regression_rule,
    slo_breach_rule,
)
from repro.observability.export import (
    chrome_trace_events,
    trace_to_dict,
    traces_to_json,
    write_chrome_trace,
)
from repro.observability.exposition import (
    parse_exposition,
    prometheus_exposition,
    sanitize_metric_name,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.observability.provenance import (
    ORIGIN_KINDS,
    STALE_ORIGINS,
    FragmentOrigin,
    Provenance,
    explain_provenance,
    origin_counts,
    render_origin_counts,
)
from repro.observability.querylog import QueryLog, QueryLogRecord, query_hash
from repro.observability.slo import (
    OBJECTIVES,
    LatencyBaseline,
    LatencyRegression,
    RegressionDetector,
    SloObservation,
    SloPolicy,
    SloStatus,
    SloTracker,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    format_trace,
)

__all__ = [
    "Alert",
    "AlertManager",
    "AlertRule",
    "Counter",
    "FragmentOrigin",
    "Gauge",
    "Histogram",
    "LatencyBaseline",
    "LatencyRegression",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OBJECTIVES",
    "ORIGIN_KINDS",
    "Provenance",
    "QueryLog",
    "QueryLogRecord",
    "RegressionDetector",
    "SEVERITIES",
    "STALE_ORIGINS",
    "SloObservation",
    "SloPolicy",
    "SloStatus",
    "SloTracker",
    "Span",
    "SpanEvent",
    "Tracer",
    "breaker_open_rule",
    "chrome_trace_events",
    "default_rules",
    "error_budget_rule",
    "explain_provenance",
    "fleet_snapshot",
    "format_trace",
    "latency_regression_rule",
    "merge_histograms",
    "merge_registries",
    "origin_counts",
    "parse_exposition",
    "percentile",
    "prometheus_exposition",
    "query_hash",
    "render_origin_counts",
    "sanitize_metric_name",
    "slo_breach_rule",
    "slo_report",
    "trace_to_dict",
    "traces_to_json",
    "write_chrome_trace",
    "write_slo_report",
]

"""Binding tuples: the rows of the physical algebra."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.xmldm.values import values_equal


class BindingTuple:
    """An immutable map from variable name to model value.

    Variables are written without the XML-QL ``$`` sigil internally.
    ``extend`` produces a new tuple; attempting to rebind an existing
    variable to a *different* value fails the extension (returns None),
    which is exactly the unification behaviour tree-pattern matching
    needs.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Any] | Iterable[tuple[str, Any]] = ()):
        self._bindings: dict[str, Any] = dict(bindings)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self._bindings)

    def get(self, var: str, default: Any = None) -> Any:
        return self._bindings.get(var, default)

    def extend(self, var: str, value: Any) -> "BindingTuple | None":
        """Bind ``var``; None when it is already bound to a different value."""
        if var in self._bindings:
            if values_equal(self._bindings[var], value):
                return self
            return None
        bindings = dict(self._bindings)
        bindings[var] = value
        return BindingTuple(bindings)

    def merge(self, other: "BindingTuple") -> "BindingTuple | None":
        """Union of two tuples; None when any shared variable disagrees."""
        bindings = dict(self._bindings)
        for var, value in other._bindings.items():
            if var in bindings:
                if not values_equal(bindings[var], value):
                    return None
            else:
                bindings[var] = value
        return BindingTuple(bindings)

    def project(self, variables: Iterable[str]) -> "BindingTuple":
        return BindingTuple(
            {var: self._bindings[var] for var in variables if var in self._bindings}
        )

    def as_dict(self) -> dict[str, Any]:
        return dict(self._bindings)

    def __getitem__(self, var: str) -> Any:
        return self._bindings[var]

    def __contains__(self, var: str) -> bool:
        return var in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BindingTuple):
            return NotImplemented
        return self._bindings == other._bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"${k}={v!r}" for k, v in self._bindings.items())
        return f"BindingTuple({inner})"


EMPTY_TUPLE = BindingTuple()

"""Leaf operators: the places tuples enter a plan."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.algebra.operators import Operator
from repro.algebra.tuples import BindingTuple


class BindingsSource(Operator):
    """Replays a fixed list of binding tuples (constants, cached results)."""

    def __init__(self, tuples: Iterable[BindingTuple], label: str = "bindings"):
        super().__init__()
        self.tuples = list(tuples)
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        yield from self.tuples

    def describe(self) -> str:
        return f"BindingsSource({self.label}, {len(self.tuples)})"


class CollectionScan(Operator):
    """Binds each item of an in-memory iterable to a variable."""

    def __init__(self, var: str, items: Iterable[Any], label: str = ""):
        super().__init__()
        self.var = var
        self.items = items
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for item in self.items:
            yield BindingTuple({self.var: item})

    def describe(self) -> str:
        return f"CollectionScan(${self.var}{', ' + self.label if self.label else ''})"


class CallbackScan(Operator):
    """Binds items produced by a zero-argument callable at execution time.

    This is the seam between the algebra and the wrapper layer: the engine
    installs a callback that performs the (simulated) remote fetch when —
    and only when — the plan actually runs.
    """

    def __init__(self, var: str, fetch: Callable[[], Iterable[Any]], label: str = ""):
        super().__init__()
        self.var = var
        self.fetch = fetch
        self.label = label

    def _produce(self) -> Iterator[BindingTuple]:
        for item in self.fetch():
            yield BindingTuple({self.var: item})

    def describe(self) -> str:
        return f"CallbackScan(${self.var}, {self.label or 'callback'})"

"""Unit tests for record types, the element bridge and serialization."""

import datetime

import pytest

from repro.xmldm.nodes import Element, Text
from repro.xmldm.parser import parse_document
from repro.xmldm.schema import (
    Field,
    RecordType,
    atomic_to_text,
    collection_to_element,
    element_to_record,
    record_to_element,
    records_from_rows,
    text_to_atomic,
)
from repro.xmldm.serializer import escape_attribute, escape_text, serialize
from repro.xmldm.values import NULL, Collection, Record


class TestRecordType:
    def test_of_shorthand(self):
        rt = RecordType.of("customer", id="number", name="string")
        assert rt.field_names == ("id", "name")
        assert rt.field("id").type == "number"

    def test_name_usable_as_field(self):
        rt = RecordType.of("t", name="string")
        assert rt.name == "t"
        assert rt.field("name").type == "string"

    def test_unknown_field_type_rejected(self):
        with pytest.raises(ValueError):
            Field("x", "blob")

    def test_validate_conforming(self):
        rt = RecordType.of("t", id="number", name="string")
        assert rt.validate(Record({"id": 1, "name": "a"})) == []

    def test_validate_type_mismatch(self):
        rt = RecordType.of("t", id="number")
        problems = rt.validate(Record({"id": "oops"}))
        assert any("expected number" in p for p in problems)

    def test_validate_not_nullable(self):
        rt = RecordType("t", (Field("id", "number", nullable=False),))
        assert rt.validate(Record({"id": NULL}))

    def test_validate_extra_field(self):
        rt = RecordType.of("t", id="number")
        assert any("unexpected" in p for p in rt.validate(Record({"id": 1, "x": 2})))


class TestAtomicText:
    @pytest.mark.parametrize(
        "value,text",
        [
            (True, "true"),
            (False, "false"),
            (5, "5"),
            (2.5, "2.5"),
            (datetime.date(2001, 4, 2), "2001-04-02"),
            (NULL, ""),
        ],
    )
    def test_atomic_to_text(self, value, text):
        assert atomic_to_text(value) == text

    def test_text_to_atomic_roundtrip(self):
        assert text_to_atomic("5", "number") == 5
        assert text_to_atomic("2.5", "number") == 2.5
        assert text_to_atomic("true", "boolean") is True
        assert text_to_atomic("2001-04-02", "date") == datetime.date(2001, 4, 2)
        assert text_to_atomic("x", "string") == "x"
        assert text_to_atomic("", "number") is NULL


class TestElementBridge:
    def test_record_roundtrip_with_type(self):
        rt = RecordType.of("c", id="number", name="string", active="boolean")
        record = Record({"id": 7, "name": "Ann", "active": True})
        element = record_to_element(record, "c")
        assert element_to_record(element, rt) == record

    def test_null_distinguished_from_empty(self):
        record = Record({"a": NULL, "b": ""})
        element = record_to_element(record)
        back = element_to_record(element)
        assert back["a"] is NULL
        assert back["b"] == ""

    def test_nested_record(self):
        record = Record({"who": Record({"name": "Ann"})})
        element = record_to_element(record)
        assert element_to_record(element)["who"]["name"] == "Ann"

    def test_collection_to_element(self):
        collection = Collection([Record({"x": 1}), Record({"x": 2})])
        element = collection_to_element(collection, "rows", "row")
        assert [c.tag for c in element.child_elements()] == ["row", "row"]

    def test_records_from_rows(self):
        rt = RecordType.of("t", a="number", b="string")
        collection = records_from_rows([(1, "x"), (2, "y")], rt)
        assert len(collection) == 2
        assert collection[1]["b"] == "y"

    def test_records_from_rows_width_mismatch(self):
        rt = RecordType.of("t", a="number")
        with pytest.raises(ValueError):
            records_from_rows([(1, 2)], rt)


class TestSerializer:
    def test_escape_text(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attribute_order_preserved(self):
        element = Element("a", {"z": "1", "a": "2"})
        assert serialize(element) == '<a z="1" a="2"/>'

    def test_pretty_print_element_only(self):
        doc = parse_document("<a><b/><c/></a>")
        pretty = serialize(doc, indent=2)
        assert "\n  <b/>" in pretty

    def test_pretty_print_keeps_mixed_content_inline(self):
        doc = parse_document("<a>text<b/>more</a>")
        assert serialize(doc, indent=2) == "<a>text<b/>more</a>"

    def test_faithful_mode_preserves_whitespace(self):
        text = "<a>  spaced  <b> x </b></a>"
        assert serialize(parse_document(text)) == text
